package kv

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dpr/internal/core"
	"dpr/internal/storage"
)

func deltaConfig() Config {
	return Config{BucketCount: 1 << 8, Checkpoint: Snapshot, SnapshotFullEvery: 4}
}

// commitAll checkpoints everything written so far and waits for durability,
// returning the persisted version.
func commitAll(t *testing.T, s *Store) core.Version {
	t.Helper()
	target := s.CurrentVersion()
	if err := s.BeginCommit(target); err != nil {
		t.Fatal(err)
	}
	waitPersisted(t, s, target)
	return target
}

// TestDeltaCheckpointAndRecover: a full snapshot followed by several deltas
// recovers the latest value of every key, including keys only ever written
// in a delta window and keys overwritten across windows.
func TestDeltaCheckpointAndRecover(t *testing.T) {
	dev := storage.NewNull()
	s := NewStore(dev, deltaConfig())
	sess := s.NewSession()

	sess.Upsert([]byte("stable"), []byte("v0"))
	sess.Upsert([]byte("hot"), []byte("h0"))
	commitAll(t, s) // full snapshot

	var last core.Version
	for i := 1; i <= 3; i++ {
		sess.Upsert([]byte("hot"), []byte(fmt.Sprintf("h%d", i)))
		sess.Upsert([]byte(fmt.Sprintf("delta-only-%d", i)), []byte("d"))
		last = commitAll(t, s) // deltas
	}
	if got := s.Checkpoints(); got != 4 {
		t.Fatalf("checkpoints = %d, want 4", got)
	}
	// The deltas must be deltas: sdelta blobs exist above the full snapshot.
	if dev.BlobSize(deltaBlobName(last)) < deltaHeaderSize {
		t.Fatalf("no delta blob at version %d", last)
	}
	sess.Close()
	s.Close()

	r, err := Recover(dev, deltaConfig(), last)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	rs := r.NewSession()
	defer rs.Close()
	if got := mustRead(t, rs, "stable"); string(got) != "v0" {
		t.Fatalf("stable = %q", got)
	}
	if got := mustRead(t, rs, "hot"); string(got) != "h3" {
		t.Fatalf("hot = %q, want h3", got)
	}
	for i := 1; i <= 3; i++ {
		if got := mustRead(t, rs, fmt.Sprintf("delta-only-%d", i)); string(got) != "d" {
			t.Fatalf("delta-only-%d = %q", i, got)
		}
	}
}

// TestDeltaTombstoneShadowsBase: a key deleted after the full snapshot must
// stay deleted after recovering through the delta that recorded the delete.
func TestDeltaTombstoneShadowsBase(t *testing.T) {
	dev := storage.NewNull()
	s := NewStore(dev, deltaConfig())
	sess := s.NewSession()

	sess.Upsert([]byte("doomed"), []byte("x"))
	sess.Upsert([]byte("kept"), []byte("y"))
	commitAll(t, s) // full

	sess.Delete([]byte("doomed"))
	last := commitAll(t, s) // delta carrying the tombstone
	sess.Close()
	s.Close()

	r, err := Recover(dev, deltaConfig(), last)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	rs := r.NewSession()
	defer rs.Close()
	if _, status, _ := rs.Read([]byte("doomed"), 0); status != StatusNotFound {
		t.Fatalf("doomed: %v, want NOT_FOUND", status)
	}
	if got := mustRead(t, rs, "kept"); string(got) != "y" {
		t.Fatalf("kept = %q", got)
	}
}

// TestDeltaFullCadence: every SnapshotFullEvery-th checkpoint is a full
// snapshot, restarting the chain.
func TestDeltaFullCadence(t *testing.T) {
	dev := storage.NewNull()
	s := NewStore(dev, deltaConfig()) // full every 4th
	defer s.Close()
	sess := s.NewSession()
	defer sess.Close()

	var targets []core.Version
	for i := 0; i < 8; i++ {
		sess.Upsert([]byte("k"), []byte(fmt.Sprintf("v%d", i)))
		targets = append(targets, commitAll(t, s))
	}
	// Checkpoints 0 and 4 are full; the rest are deltas.
	for i, v := range targets {
		full := dev.BlobSize(snapBlobName(v)) >= 8
		delta := dev.BlobSize(deltaBlobName(v)) >= deltaHeaderSize
		if wantFull := i%4 == 0; full != wantFull || delta == wantFull {
			t.Fatalf("checkpoint %d (version %d): full=%v delta=%v, want full=%v",
				i, v, full, delta, wantFull)
		}
	}
}

// TestDeltaCrashBeforeReport is the crash-during-delta-checkpoint case: the
// store seals a delta (persisted advances) and the process dies before the
// finder ever hears about it. DPR may then ask the restarted worker for any
// version at or below the sealed one — including versions only reachable
// through the middle of the delta chain — and recovery must produce exactly
// the <=v prefix.
func TestDeltaCrashBeforeReport(t *testing.T) {
	dev := storage.NewNull()
	s := NewStore(dev, deltaConfig())
	sess := s.NewSession()

	sess.Upsert([]byte("k"), []byte("full"))
	v0 := commitAll(t, s) // full snapshot
	sess.Upsert([]byte("k"), []byte("mid"))
	sess.Upsert([]byte("mid-only"), []byte("m"))
	v1 := commitAll(t, s) // delta 1
	sess.Upsert([]byte("k"), []byte("sealed"))
	v2 := commitAll(t, s) // delta 2: sealed, never reported
	sess.Close()
	s.Close() // crash

	// The finder never ingested v2's report, so the cut may pin this worker
	// anywhere at or below v2. Recover at each possible position.
	for _, tc := range []struct {
		v    core.Version
		want string
	}{{v2, "sealed"}, {v1, "mid"}, {v0, "full"}} {
		r, err := Recover(dev, deltaConfig(), tc.v)
		if err != nil {
			t.Fatalf("recover at %d: %v", tc.v, err)
		}
		rs := r.NewSession()
		if got := mustRead(t, rs, "k"); string(got) != tc.want {
			t.Fatalf("recover at %d: k = %q, want %q", tc.v, got, tc.want)
		}
		_, status, _ := rs.Read([]byte("mid-only"), 0)
		if wantFound := tc.v >= v1; (status == StatusOK) != wantFound {
			t.Fatalf("recover at %d: mid-only status %v", tc.v, status)
		}
		if r.PersistedVersion() > tc.v {
			t.Fatalf("recover at %d: persisted %d beyond request", tc.v, r.PersistedVersion())
		}
		rs.Close()
		r.Close()
	}
}

// TestDeltaRollbackForcesFull: a rollback invalidates the delta chain, so the
// next checkpoint must be a full snapshot, and recovery after it must not
// resurrect rolled-back writes.
func TestDeltaRollbackForcesFull(t *testing.T) {
	dev := storage.NewNull()
	s := NewStore(dev, deltaConfig())
	sess := s.NewSession()

	sess.Upsert([]byte("k"), []byte("good"))
	v0 := commitAll(t, s) // full
	sess.Upsert([]byte("k"), []byte("doomed"))
	commitAll(t, s) // delta

	if err := s.Restore(v0); err != nil {
		t.Fatal(err)
	}
	sess.Upsert([]byte("k2"), []byte("after"))
	last := commitAll(t, s)
	if dev.BlobSize(snapBlobName(last)) < 8 {
		t.Fatalf("checkpoint after rollback is not a full snapshot")
	}
	sess.Close()
	s.Close()

	r, err := Recover(dev, deltaConfig(), last)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	rs := r.NewSession()
	defer rs.Close()
	if got := mustRead(t, rs, "k"); string(got) != "good" {
		t.Fatalf("k = %q, want pre-rollback value", got)
	}
	if got := mustRead(t, rs, "k2"); string(got) != "after" {
		t.Fatalf("k2 = %q", got)
	}
}

// TestGroupCommitCoalesces: many concurrent BeginCommit calls fold into far
// fewer checkpoint state machine runs (single-flight group commit), while
// every requested version still becomes durable.
func TestGroupCommitCoalesces(t *testing.T) {
	// A device with real write latency, so requests actually overlap an
	// in-flight checkpoint instead of each finding the machine idle.
	dev := storage.NewMemDevice("ssd", storage.LatencyProfile{WriteLatency: time.Millisecond})
	s := NewStore(dev, Config{BucketCount: 1 << 8})
	defer s.Close()
	sess := s.NewSession()
	defer sess.Close()

	const requests = 64
	var wg sync.WaitGroup
	var maxTarget atomic.Uint64
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := sess.Upsert([]byte("k"), []byte("v"))
			if err != nil {
				t.Error(err)
				return
			}
			for {
				cur := maxTarget.Load()
				if uint64(v) <= cur || maxTarget.CompareAndSwap(cur, uint64(v)) {
					break
				}
			}
			if err := s.BeginCommit(v); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	waitPersisted(t, s, core.Version(maxTarget.Load()))
	if got := s.Checkpoints(); got >= requests/2 {
		t.Fatalf("%d checkpoints for %d concurrent commits: not coalescing", got, requests)
	}
}

// TestOnPersistFires: the observer sees every checkpoint seal, with the
// persisted version, and is not invoked by a rollback's regression.
func TestOnPersistFires(t *testing.T) {
	s := NewStore(storage.NewNull(), Config{BucketCount: 1 << 8})
	defer s.Close()
	sess := s.NewSession()
	defer sess.Close()

	var mu sync.Mutex
	var seen []core.Version
	s.OnPersist(func(v core.Version) {
		mu.Lock()
		seen = append(seen, v)
		mu.Unlock()
	})

	sess.Upsert([]byte("k"), []byte("v"))
	v0 := commitAll(t, s)
	sess.Upsert([]byte("k"), []byte("v2"))
	v1 := commitAll(t, s)

	mu.Lock()
	got := append([]core.Version(nil), seen...)
	mu.Unlock()
	if len(got) != 2 || got[0] != v0 || got[1] != v1 {
		t.Fatalf("persist notifications %v, want [%d %d]", got, v0, v1)
	}

	if err := s.Restore(v0); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	mu.Lock()
	n := len(seen)
	mu.Unlock()
	if n != 2 {
		t.Fatalf("rollback fired a persist notification (%d total)", n)
	}
}

// TestDeltaConcurrentWritersRecover hammers the dirty-bucket harvest: writer
// goroutines upsert continuously while the main goroutine seals delta after
// delta, so writes land in every phase of the seal (before the version
// shift, during the drain, mid-scan after a bucket's stamp was cleared).
// After a final quiesced seal, recovery must see the newest committed value
// of every key — a record missed by a harvest would surface here as a stale
// or missing key.
func TestDeltaConcurrentWritersRecover(t *testing.T) {
	dev := storage.NewNull()
	cfg := Config{BucketCount: 1 << 6, Checkpoint: Snapshot, SnapshotFullEvery: 64}
	s := NewStore(dev, cfg)

	const writers = 4
	const keysPerWriter = 32
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := s.NewSession()
			defer sess.Close()
			for round := 0; !stop.Load(); round++ {
				for k := 0; k < keysPerWriter; k++ {
					key := []byte(fmt.Sprintf("w%d-k%02d", w, k))
					val := []byte(fmt.Sprintf("r%08d", round))
					if _, err := sess.Upsert(key, val); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}

	commitAll(t, s) // full snapshot under load
	for i := 0; i < 20; i++ {
		commitAll(t, s) // deltas racing the writers
	}
	stop.Store(true)
	wg.Wait()
	// Final seal with writers quiesced: everything written is now in-window.
	last := commitAll(t, s)

	// Record the expected newest value of every key, then recover and compare.
	sess := s.NewSession()
	want := make(map[string]string)
	for w := 0; w < writers; w++ {
		for k := 0; k < keysPerWriter; k++ {
			key := fmt.Sprintf("w%d-k%02d", w, k)
			want[key] = string(mustRead(t, sess, key))
		}
	}
	sess.Close()
	s.Close()

	r, err := Recover(dev, cfg, last)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	rs := r.NewSession()
	defer rs.Close()
	for key, val := range want {
		if got := string(mustRead(t, rs, key)); got != val {
			t.Fatalf("%s = %q after recovery, want %q", key, got, val)
		}
	}
}
