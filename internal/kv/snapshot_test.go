package kv

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"dpr/internal/storage"
)

func TestSnapshotCheckpointAndRecover(t *testing.T) {
	dev := storage.NewNull()
	s := NewStore(dev, Config{BucketCount: 1 << 8, Checkpoint: Snapshot})
	sess := s.NewSession()
	for i := 0; i < 200; i++ {
		sess.Upsert([]byte(fmt.Sprintf("k%d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	sess.Delete([]byte("k7")) // deletions must not appear in the snapshot
	s.BeginCommit(1)
	waitPersisted(t, s, 1)
	// Post-checkpoint writes must not leak into the version-1 snapshot.
	sess.Upsert([]byte("k0"), []byte("version-2"))
	sess.Close()
	s.Close()

	r, err := Recover(dev, Config{BucketCount: 1 << 8, Checkpoint: Snapshot}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	rs := r.NewSession()
	defer rs.Close()
	if got := mustRead(t, rs, "k0"); string(got) != "v0" {
		t.Fatalf("k0 = %q, want v0", got)
	}
	if got := mustRead(t, rs, "k199"); string(got) != "v199" {
		t.Fatalf("k199 = %q", got)
	}
	if _, status, _ := rs.Read([]byte("k7"), 0); status != StatusNotFound {
		t.Fatalf("deleted key resurrected by snapshot: %v", status)
	}
	if r.PersistedVersion() != 1 {
		t.Fatalf("persisted %d", r.PersistedVersion())
	}
	// The recovered store checkpoints again in snapshot mode.
	rs.Upsert([]byte("k0"), []byte("after"))
	target := r.CurrentVersion()
	r.BeginCommit(target)
	waitPersisted(t, r, target)
}

func TestSnapshotSupersedesOldValue(t *testing.T) {
	dev := storage.NewNull()
	s := NewStore(dev, Config{Checkpoint: Snapshot})
	sess := s.NewSession()
	sess.Upsert([]byte("k"), []byte("old"))
	sess.Upsert([]byte("k"), []byte("newer-value")) // RCU + in-place paths
	s.BeginCommit(1)
	waitPersisted(t, s, 1)
	sess.Close()
	s.Close()
	r, err := RecoverSnapshot(dev, Config{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	rs := r.NewSession()
	defer rs.Close()
	if got := mustRead(t, rs, "k"); string(got) != "newer-value" {
		t.Fatalf("snapshot kept stale value: %q", got)
	}
}

func TestSnapshotExcludesRolledBackVersions(t *testing.T) {
	dev := storage.NewNull()
	s := NewStore(dev, Config{Checkpoint: Snapshot})
	sess := s.NewSession()
	sess.Upsert([]byte("k"), []byte("v1"))
	s.BeginCommit(1)
	waitPersisted(t, s, 1)
	sess.Upsert([]byte("k"), []byte("doomed"))
	if err := s.Restore(1); err != nil {
		t.Fatal(err)
	}
	sess.Upsert([]byte("k"), []byte("v3"))
	target := s.CurrentVersion()
	s.BeginCommit(target)
	waitPersisted(t, s, target)
	sess.Close()
	s.Close()
	r, err := RecoverSnapshot(dev, Config{}, target)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	rs := r.NewSession()
	defer rs.Close()
	if got := mustRead(t, rs, "k"); string(got) != "v3" {
		t.Fatalf("rolled-back value leaked into snapshot: %q", got)
	}
}

func TestSnapshotConcurrentWriters(t *testing.T) {
	// Snapshot checkpoints run while writers keep updating hot keys; the
	// snapshot must capture a consistent <=target view.
	dev := storage.NewNull()
	s := NewStore(dev, Config{BucketCount: 64, Checkpoint: Snapshot})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sess := s.NewSession()
			defer sess.Close()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				sess.Upsert([]byte(fmt.Sprintf("g%d-k%d", g, i%32)), []byte(fmt.Sprintf("%d", i)))
				i++
			}
		}(g)
	}
	for v := 1; v <= 3; v++ {
		target := s.CurrentVersion()
		s.BeginCommit(target)
		waitPersisted(t, s, target)
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	persisted := s.PersistedVersion()
	s.Close()
	r, err := Recover(dev, Config{BucketCount: 64, Checkpoint: Snapshot}, persisted)
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
}

func TestRecoverSnapshotMissing(t *testing.T) {
	if _, err := RecoverSnapshot(storage.NewNull(), Config{}, 3); err == nil {
		t.Fatal("missing snapshot must error")
	}
}

func TestCheckpointKindString(t *testing.T) {
	if FoldOver.String() != "fold-over" || Snapshot.String() != "snapshot" {
		t.Fatal("kind names")
	}
}
