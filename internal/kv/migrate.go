package kv

import (
	"errors"

	"dpr/internal/core"
)

// Migration support: the donor side scans the frozen prefix of the moving
// partitions (reusing the fold-over shard walk of writeSnapshot), and the
// receive side relinks imported records at the head of the target's hash
// chains without the in-place-update walk (the keys are new to the store).

// ScanFrozen walks every record live at versions ≤ boundary whose key the
// predicate selects, calling emit once per key with the newest surviving
// record (tombstoned and rolled-back records are skipped, like a snapshot
// checkpoint). The caller must have sealed the boundary first (commit past
// it), so records ≤ boundary are immutable and the scan is consistent.
//
// Index shards are walked concurrently (index.forEachShard), so emit may be
// invoked from multiple goroutines at once and must synchronize internally.
// The key and value slices alias log memory under the bucket lock and are
// valid only for the duration of the call: emit must copy what it keeps.
//
// Like a fold-over checkpoint scan, only the in-memory region of the log is
// walked; callers migrate partitions out of stores whose working set is
// resident (the chaos and integration configurations never evict).
//
//dpr:ignore cut-worldline the kv layer is deliberately world-line-agnostic: erasure is modeled as rolled-back version ranges (RolledBackRanges below), and the (world-line, boundary) pairing is pinned by the caller (dfaster migrateOut) which seals the boundary on its own tracked world-line before scanning
func (s *Store) ScanFrozen(boundary core.Version, pred func(key []byte) bool, emit func(key, val []byte, ver core.Version)) {
	ranges := s.RolledBackRanges()
	s.index.forEachShard(func(si int) {
		sh := &s.index.shards[si]
		for b := range sh.buckets {
			h := s.index.handle(si, b)
			mu := s.index.lock(h)
			mu.Lock()
			head := s.index.head(h)
			seen := map[string]bool{}
			memHead := s.log.head.Load()
			for addr := head; addr != nilAddress && addr >= memHead; {
				r, ok := s.log.view(addr)
				if !ok {
					break
				}
				key := r.key()
				ver := core.Version(r.version())
				if !seen[string(key)] && ver <= boundary &&
					!rangesContain(ranges, ver) && !r.invalid() && pred(key) {
					seen[string(key)] = true
					if !r.tombstone() {
						emit(key, r.value(), ver)
					}
				}
				addr = r.prev()
			}
			mu.Unlock()
		}
	})
}

// Ingest appends key=val at the head of its hash chain, returning the
// version the write executed in. It is Upsert without the in-place-update
// walk: migrated keys are new to the receiving store, so the newest-record
// scan would always miss. Receive-side only — using Ingest on a key the
// store already holds shadows the old record instead of updating it, which
// is still correct (chains resolve newest-first) but wastes log space.
func (sess *Session) Ingest(key, val []byte) (core.Version, error) {
	if len(key) == 0 {
		return 0, errors.New("kv: empty key")
	}
	sess.slot.Enter()
	defer sess.slot.Exit()
	st := sess.store.loadState()
	ver := st.version()
	s := sess.store
	b := s.index.bucketFor(key)
	mu := s.index.lock(b)
	mu.Lock()
	defer mu.Unlock()
	rec := s.log.writeRecord(s.index.head(b), uint64(ver), false, key, val, len(val))
	s.index.setHead(b, rec.addr)
	return ver, nil
}
