package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// LoadConfig parameterizes a module load.
type LoadConfig struct {
	// Dir is any directory inside the module (the loader walks up to the
	// enclosing go.mod).
	Dir string
	// IncludeTests adds in-package _test.go files to each package. External
	// test packages (package foo_test) are always skipped: they cannot be
	// type-checked into the package they test without a second unit.
	IncludeTests bool
}

// Load parses and type-checks every package of the module containing
// cfg.Dir. Module-internal imports are resolved recursively within the unit;
// standard-library imports are type-checked from GOROOT source via the
// stdlib "source" importer, so the driver needs no export data and no
// x/tools dependency.
func Load(cfg LoadConfig) (*Unit, error) {
	root, modPath, err := findModule(cfg.Dir)
	if err != nil {
		return nil, err
	}
	l := &loader{
		cfg:     cfg,
		fset:    token.NewFileSet(),
		root:    root,
		modPath: modPath,
		pkgs:    make(map[string]*Package),
		state:   make(map[string]int),
	}
	l.std = importer.ForCompiler(l.fset, "source", nil).(types.ImporterFrom)
	dirs, err := l.packageDirs()
	if err != nil {
		return nil, err
	}
	for _, dir := range dirs {
		if _, err := l.load(l.importPath(dir)); err != nil {
			return nil, err
		}
	}
	return &Unit{
		Fset:       l.fset,
		ModulePath: modPath,
		ModuleDir:  root,
		Packages:   l.order,
	}, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root and module path.
func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					mp := strings.TrimSpace(rest)
					if q, err := strconv.Unquote(mp); err == nil {
						mp = q
					}
					return d, mp, nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("analysis: no go.mod found above %s", abs)
		}
		d = parent
	}
}

const (
	stNone = iota
	stLoading
	stDone
)

type loader struct {
	cfg     LoadConfig
	fset    *token.FileSet
	root    string
	modPath string
	std     types.ImporterFrom
	pkgs    map[string]*Package
	state   map[string]int
	order   []*Package
}

func (l *loader) importPath(dir string) string {
	rel, _ := filepath.Rel(l.root, dir)
	if rel == "." {
		return l.modPath
	}
	return l.modPath + "/" + filepath.ToSlash(rel)
}

func (l *loader) dirOf(importPath string) string {
	if importPath == l.modPath {
		return l.root
	}
	rel := strings.TrimPrefix(importPath, l.modPath+"/")
	return filepath.Join(l.root, filepath.FromSlash(rel))
}

// packageDirs walks the module tree for directories containing Go files.
// testdata, vendor, hidden and underscore-prefixed directories are skipped,
// mirroring the go tool.
func (l *loader) packageDirs() ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(l.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != l.root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") && !strings.HasPrefix(d.Name(), ".") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	sort.Strings(dirs)
	return dirs, err
}

// load parses and type-checks one module package (memoized, cycle-checked).
func (l *loader) load(importPath string) (*Package, error) {
	switch l.state[importPath] {
	case stDone:
		return l.pkgs[importPath], nil
	case stLoading:
		return nil, fmt.Errorf("analysis: import cycle through %s", importPath)
	}
	l.state[importPath] = stLoading
	dir := l.dirOf(importPath)
	files, name, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		l.state[importPath] = stDone
		return nil, nil
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: (*unitImporter)(l),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(importPath, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("analysis: type errors in %s: %v", importPath, typeErrs[0])
	}
	p := &Package{
		Path:  importPath,
		Dir:   dir,
		Name:  name,
		Files: files,
		Pkg:   tpkg,
		Info:  info,
	}
	l.pkgs[importPath] = p
	l.state[importPath] = stDone
	l.order = append(l.order, p)
	return p, nil
}

// parseDir parses the package's files in dir: non-test files always,
// in-package test files when IncludeTests, external-test-package files
// never.
func (l *loader) parseDir(dir string) ([]*ast.File, string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, "", err
	}
	var files []*ast.File
	var name string
	for _, e := range entries {
		fn := e.Name()
		if e.IsDir() || !strings.HasSuffix(fn, ".go") || strings.HasPrefix(fn, ".") || strings.HasPrefix(fn, "_") {
			continue
		}
		if strings.HasSuffix(fn, "_test.go") && !l.cfg.IncludeTests {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, fn), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, "", err
		}
		pkgName := f.Name.Name
		if strings.HasSuffix(pkgName, "_test") {
			continue // external test package: separate unit, skipped
		}
		if name == "" {
			name = pkgName
		}
		if pkgName != name {
			return nil, "", fmt.Errorf("analysis: multiple packages in %s: %s and %s", dir, name, pkgName)
		}
		files = append(files, f)
	}
	return files, name, nil
}

// unitImporter resolves imports during type-checking: module-internal paths
// recurse into the loader, everything else goes to the GOROOT source
// importer.
type unitImporter loader

func (ui *unitImporter) Import(path string) (*types.Package, error) {
	return ui.ImportFrom(path, ui.root, 0)
}

func (ui *unitImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	l := (*loader)(ui)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		if p == nil {
			return nil, fmt.Errorf("analysis: no Go files in %s", path)
		}
		return p.Pkg, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}
