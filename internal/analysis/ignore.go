package analysis

import (
	"go/ast"
	"go/token"
	"os"
	"strings"
)

// ignorePrefix introduces a suppression comment:
//
//	//dpr:ignore <check>[,<check>...] <justification>
//
// A trailing comment suppresses matching diagnostics on its own line; a
// standalone comment (nothing but whitespace before it on the line)
// suppresses the line below it. The justification is mandatory: a bare
// //dpr:ignore is itself a diagnostic, so every suppression documents why
// the invariant does not apply at that site.
const ignorePrefix = "dpr:ignore"

type ignoreKey struct {
	file  string
	line  int
	check string
}

type ignoreSet map[ignoreKey]bool

func (s ignoreSet) filter(diags []Diagnostic) []Diagnostic {
	out := diags[:0]
	for _, d := range diags {
		if s[ignoreKey{d.Pos.Filename, d.Pos.Line, d.Check}] {
			continue
		}
		out = append(out, d)
	}
	return out
}

// collectIgnores scans every comment in the unit for //dpr:ignore
// directives. Malformed directives (no check name, no justification) come
// back as "dpr-ignore" diagnostics so the gate fails on undocumented
// suppressions.
func collectIgnores(u *Unit) (ignoreSet, []Diagnostic) {
	set := make(ignoreSet)
	var diags []Diagnostic
	srcCache := make(map[string][]byte)
	u.EachFile(func(p *Package, f *ast.File) {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//"+ignorePrefix)
				if !ok {
					continue
				}
				pos := u.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) == 0 {
					diags = append(diags, Diagnostic{Pos: pos, Check: "dpr-ignore",
						Message: "//dpr:ignore needs a check name and a justification"})
					continue
				}
				if len(fields) < 2 {
					diags = append(diags, Diagnostic{Pos: pos, Check: "dpr-ignore",
						Message: "//dpr:ignore " + fields[0] + " needs a justification"})
					continue
				}
				line := pos.Line
				if standaloneComment(srcCache, pos.Filename, pos.Line, pos.Column) {
					line++ // comment on its own line guards the next line
				}
				for _, check := range strings.Split(fields[0], ",") {
					if check = strings.TrimSpace(check); check != "" {
						set[ignoreKey{pos.Filename, line, check}] = true
					}
				}
			}
		}
	})
	return set, diags
}

// standaloneComment reports whether only whitespace precedes the comment on
// its source line (so the suppression applies to the following line).
func standaloneComment(cache map[string][]byte, file string, line, col int) bool {
	src, ok := cache[file]
	if !ok {
		src, _ = os.ReadFile(file)
		cache[file] = src
	}
	if src == nil {
		return false
	}
	lines := strings.Split(string(src), "\n")
	if line-1 >= len(lines) || col-1 > len(lines[line-1]) {
		return false
	}
	return strings.TrimSpace(lines[line-1][:col-1]) == ""
}

// directiveComments returns every comment in the unit whose text begins with
// the given //dpr:<name> directive, paired with its position and the text
// after the directive. Shared by the lock-order and noalloc annotations.
func directiveComments(u *Unit, directive string) []directiveAt {
	var out []directiveAt
	u.EachFile(func(p *Package, f *ast.File) {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if rest, ok := strings.CutPrefix(c.Text, "//"+directive); ok {
					if rest == "" || rest[0] == ' ' || rest[0] == '\t' {
						out = append(out, directiveAt{
							pkg:  p,
							pos:  c.Pos(),
							text: strings.TrimSpace(rest),
						})
					}
				}
			}
		}
	})
	return out
}

type directiveAt struct {
	pkg  *Package
	pos  token.Pos
	text string
}
