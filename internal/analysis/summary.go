package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file builds the unit's held-lock summaries: for every declared
// function, the lock acquisitions it performs and the calls it makes with
// the abstract held-lock set in force at that point (computed by the same
// lockFlow interpreter the mutex checker uses, so branch merges intersect
// and the sets are must-hold). The summaries plus the call graph are what
// make the lock-order-global and epoch-discipline checkers whole-program:
// held sets propagate across call edges instead of dying at function
// boundaries.

// heldRef is one lock in a held-at snapshot.
type heldRef struct {
	typeKey string
	keyed   bool
	pos     token.Pos // acquisition site
}

// acquireSite is a lock acquisition with the locks already held there.
type acquireSite struct {
	op   lockOp
	pos  token.Pos
	held []heldRef
}

// callHeld is a non-lock call made while at least one lock is held.
type callHeld struct {
	call *ast.CallExpr
	pos  token.Pos
	held []heldRef
}

// funcLockSummary is the per-declaration summary. Go-spawned function
// literals get their own summaries (async=true): their acquisitions are
// real nesting-graph edges but must not be attributed to the spawning
// function's synchronous behavior.
type funcLockSummary struct {
	fs       *funcSpan
	fn       *types.Func // nil for async literal summaries
	async    bool
	acquires []acquireSite
	calls    []callHeld
}

type lockSummaries struct {
	byFunc map[*types.Func]*funcLockSummary
	all    []*funcLockSummary // deterministic order: declaredFuncs order
}

// unitLockSummaries builds (once) the whole-unit lock summaries.
func unitLockSummaries(u *Unit) *lockSummaries {
	if u.cache.summaries != nil {
		return u.cache.summaries
	}
	ls := &lockSummaries{byFunc: make(map[*types.Func]*funcLockSummary)}
	funcs := declaredFuncs(u)
	for i := range funcs {
		fs := &funcs[i]
		fn, ok := fs.pkg.Info.Defs[fs.decl.Name].(*types.Func)
		if !ok {
			continue
		}
		sum := &funcLockSummary{fs: fs, fn: fn}
		asyncSum := &funcLockSummary{fs: fs, async: true}
		lits := collectFuncLits(fs.decl.Body)
		run := func(body *ast.BlockStmt, target *funcLockSummary) {
			flow := &lockFlow{u: u, pkg: fs.pkg, check: "summary"}
			flow.onCall = func(call *ast.CallExpr, st *lockState) {
				recordCall(fs.pkg, call, st, target)
			}
			flow.block(body.List, newLockState())
		}
		run(fs.decl.Body, sum)
		for _, lit := range lits {
			if lit.async {
				run(lit.lit.Body, asyncSum)
			} else {
				run(lit.lit.Body, sum)
			}
		}
		ls.byFunc[fn] = sum
		ls.all = append(ls.all, sum)
		if len(asyncSum.acquires) > 0 || len(asyncSum.calls) > 0 {
			ls.all = append(ls.all, asyncSum)
		}
	}
	u.cache.summaries = ls
	return ls
}

type litAt struct {
	lit   *ast.FuncLit
	async bool // defined under a `go` statement subtree
}

// collectFuncLits finds every function literal in body, flagging those that
// live under a `go` statement (their activations are not the enclosing
// function's synchronous work).
func collectFuncLits(body *ast.BlockStmt) []litAt {
	var out []litAt
	var walk func(n ast.Node, async bool)
	walk = func(n ast.Node, async bool) {
		ast.Inspect(n, func(c ast.Node) bool {
			switch cn := c.(type) {
			case *ast.GoStmt:
				if cn != n {
					walk(cn.Call, true)
					return false
				}
			case *ast.FuncLit:
				if cn != n {
					out = append(out, litAt{lit: cn, async: async})
					walk(cn.Body, async)
					return false
				}
			}
			return true
		})
	}
	walk(body, false)
	return out
}

// recordCall classifies one observed call under the abstract state st and
// folds it into the summary.
func recordCall(pkg *Package, call *ast.CallExpr, st *lockState, sum *funcLockSummary) {
	held := snapshotHeld(st)
	if op, ok := classifyLockCall(pkg, call); ok {
		if op.acquire {
			var others []heldRef
			for _, h := range held {
				if h.typeKey != op.typeKey {
					others = append(others, h)
				}
			}
			sum.acquires = append(sum.acquires, acquireSite{op: op, pos: call.Pos(), held: others})
		}
		return
	}
	if len(held) > 0 {
		sum.calls = append(sum.calls, callHeld{call: call, pos: call.Pos(), held: held})
	}
}

// snapshotHeld renders the held map as a deduped, deterministic slice.
func snapshotHeld(st *lockState) []heldRef {
	if len(st.held) == 0 {
		return nil
	}
	seen := make(map[string]bool, len(st.held))
	out := make([]heldRef, 0, len(st.held))
	for _, h := range st.held {
		if seen[h.op.typeKey] {
			continue
		}
		seen[h.op.typeKey] = true
		out = append(out, heldRef{typeKey: h.op.typeKey, keyed: h.op.keyed, pos: h.pos})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].typeKey < out[j].typeKey })
	return out
}

// unitDrainCoupled computes the set of keyed locks that some function holds
// across a (transitive) epoch drain: taking such a lock inside an
// epoch-protected section closes the deadlock loop, because the drain the
// lock holder is waiting on cannot finish until the entered slot exits. The
// map records the first witness position (the drain-reaching call made with
// the lock held).
func unitDrainCoupled(u *Unit) map[string]token.Pos {
	if u.cache.drainCoupled != nil {
		return u.cache.drainCoupled
	}
	g := unitGraph(u)
	targets := drainTargets(u)
	coupled := make(map[string]token.Pos)
	for _, sum := range unitLockSummaries(u).all {
		for _, ch := range sum.calls {
			hit := false
			for _, callee := range g.siteCallees[ch.call] {
				if _, ok := g.reachesAny(callee, targets); ok {
					hit = true
					break
				}
			}
			if !hit {
				continue
			}
			for _, h := range ch.held {
				if h.keyed {
					if _, dup := coupled[h.typeKey]; !dup {
						coupled[h.typeKey] = ch.pos
					}
				}
			}
		}
	}
	u.cache.drainCoupled = coupled
	return coupled
}

// drainTargets lists the declared blocking-drain entry points: Drain and
// WaitObserved on epoch.Table (matched by last path segment, so fixtures
// can declare a miniature epoch package).
func drainTargets(u *Unit) map[*types.Func]bool {
	g := unitGraph(u)
	targets := make(map[*types.Func]bool)
	for fn := range g.spanOf {
		if fn.Name() != "Drain" && fn.Name() != "WaitObserved" {
			continue
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			continue
		}
		if isEpochTable(sig.Recv().Type()) {
			targets[fn] = true
		}
	}
	return targets
}
