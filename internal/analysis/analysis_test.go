package analysis

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// The tests run the full driver once over the fixture module in
// testdata/src (its own go.mod, so the go tool and the loader both keep it
// out of the enclosing module) and compare the diagnostics against
// `// want "regex"` comments in the fixture sources. A line may carry
// several quoted regexes; every diagnostic must match a want on its line
// and every want must be hit.

var fixtureState struct {
	once  sync.Once
	unit  *Unit
	diags []Diagnostic
	err   error
}

func fixture(t *testing.T) (*Unit, []Diagnostic) {
	t.Helper()
	fixtureState.once.Do(func() {
		u, err := Load(LoadConfig{Dir: filepath.Join("testdata", "src")})
		if err != nil {
			fixtureState.err = err
			return
		}
		fixtureState.unit = u
		fixtureState.diags = Run(u, DefaultCheckers())
	})
	if fixtureState.err != nil {
		t.Fatalf("loading fixture module: %v", fixtureState.err)
	}
	return fixtureState.unit, fixtureState.diags
}

// pkgDiags filters the fixture run down to one fixture package directory.
func pkgDiags(t *testing.T, diags []Diagnostic, pkg string) []Diagnostic {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src", pkg))
	if err != nil {
		t.Fatal(err)
	}
	var out []Diagnostic
	for _, d := range diags {
		if filepath.Dir(d.Pos.Filename) == dir {
			out = append(out, d)
		}
	}
	return out
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

var wantQuoted = regexp.MustCompile(`"([^"]*)"`)

// collectWants parses `// want "regex" ["regex" ...]` comments from every
// fixture file in pkg.
func collectWants(t *testing.T, pkg string) []*want {
	t.Helper()
	dir := filepath.Join("testdata", "src", pkg)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []*want
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		abs, err := filepath.Abs(path)
		if err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			_, rest, ok := strings.Cut(line, "// want ")
			if !ok {
				continue
			}
			ms := wantQuoted.FindAllStringSubmatch(rest, -1)
			if len(ms) == 0 {
				t.Fatalf("%s:%d: malformed want comment: %s", path, i+1, line)
			}
			for _, m := range ms {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regex %q: %v", path, i+1, m[1], err)
				}
				wants = append(wants, &want{file: abs, line: i + 1, re: re})
			}
		}
	}
	return wants
}

// assertMatches pairs diagnostics with same-line wants in both directions.
func assertMatches(t *testing.T, diags []Diagnostic, wants []*want) {
	t.Helper()
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d.String())
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matched %q", w.file, w.line, w.re)
		}
	}
}

// TestCheckerFixtures runs every checker against its failing and passing
// fixture packages: the failing package must produce each wanted diagnostic
// (and nothing else), the passing package must be silent.
func TestCheckerFixtures(t *testing.T) {
	cases := []struct {
		check, bad, ok string
	}{
		{"atomic-discipline", "atomicbad", "atomicok"},
		{"mutex-discipline", "mutexbad", "mutexok"},
		{"hotpath-noalloc", "noallocbad", "noallocok"},
		{"cut-worldline", "cutwlbad", "cutwlok"},
		{"decode-bounds", "boundsbad", "boundsok"},
		{"epoch-discipline", "epochbad", "epochok"},
		{"lock-order-global", "lockglobalbad", "lockglobalok"},
		{"goroutine-lifecycle", "golifebad", "golifeok"},
		{"migration-protocol", "migbad", "migok"},
	}
	for _, tc := range cases {
		t.Run(tc.check, func(t *testing.T) {
			_, diags := fixture(t)
			bad := pkgDiags(t, diags, tc.bad)
			n := 0
			for _, d := range bad {
				if d.Check == tc.check {
					n++
				}
			}
			if n == 0 {
				t.Errorf("checker %s produced no diagnostics on %s", tc.check, tc.bad)
			}
			assertMatches(t, bad, collectWants(t, tc.bad))
			for _, d := range pkgDiags(t, diags, tc.ok) {
				t.Errorf("clean fixture %s: %s", tc.ok, d.String())
			}
		})
	}
}

// TestIgnoreRequiresJustification: a bare //dpr:ignore and one without a
// justification are diagnostics themselves, and the malformed directive
// must not suppress the finding it sits on.
func TestIgnoreRequiresJustification(t *testing.T) {
	_, diags := fixture(t)
	bad := pkgDiags(t, diags, "ignorebad")
	assertHas := func(check, pattern string) {
		t.Helper()
		re := regexp.MustCompile(pattern)
		for _, d := range bad {
			if d.Check == check && re.MatchString(d.Message) {
				return
			}
		}
		t.Errorf("ignorebad: no %s diagnostic matching %q in %v", check, pattern, bad)
	}
	assertHas("dpr-ignore", `needs a check name and a justification`)
	assertHas("dpr-ignore", `//dpr:ignore cut-worldline needs a justification`)
	assertHas("cut-worldline", `struct Unjustified carries a core\.Cut`)
	if len(bad) != 3 {
		for _, d := range bad {
			t.Logf("got: %s", d.String())
		}
		t.Errorf("ignorebad: got %d diagnostics, want 3", len(bad))
	}
}

// TestJustifiedIgnoreSuppresses: a well-formed standalone suppression
// silences the next line and produces nothing of its own.
func TestJustifiedIgnoreSuppresses(t *testing.T) {
	_, diags := fixture(t)
	for _, d := range pkgDiags(t, diags, "ignoreok") {
		t.Errorf("ignoreok: %s", d.String())
	}
}

// TestFixtureCleanPackagesSilent guards against checker cross-talk: no
// diagnostic may land outside the deliberately-failing fixture packages.
func TestFixtureCleanPackagesSilent(t *testing.T) {
	_, diags := fixture(t)
	failing := map[string]bool{
		"atomicbad": true, "mutexbad": true, "noallocbad": true,
		"cutwlbad": true, "boundsbad": true, "ignorebad": true,
		"epochbad": true, "lockglobalbad": true, "golifebad": true,
		"migbad": true,
	}
	for _, d := range diags {
		if base := filepath.Base(filepath.Dir(d.Pos.Filename)); !failing[base] {
			t.Errorf("diagnostic in clean fixture package %s: %s", base, d.String())
		}
	}
}
