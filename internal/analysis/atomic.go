package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicChecker enforces atomic access discipline: a struct field accessed
// through sync/atomic anywhere must be accessed atomically everywhere.
//
//   - Fields passed by address to the sync/atomic free functions
//     (atomic.LoadUint64(&s.f), atomic.AddInt64(&s.f, 1), ...) are "atomic
//     fields"; any plain read or write of the same field object elsewhere in
//     the module is flagged — the mixed-access bug class where one goroutine
//     publishes with a store-release and another reads with a torn plain
//     load.
//   - Fields of the typed atomic wrappers (atomic.Uint64, atomic.Pointer[T],
//     ...) can only be accessed through their methods; copying the wrapper
//     value out of (or into) the field smuggles a plain read/write past the
//     API and is flagged.
//
// Composite-literal keys are exempt: zero-value construction before the
// value is published is the one sanctioned plain "write".
type AtomicChecker struct{}

func (*AtomicChecker) Name() string { return "atomic-discipline" }

// atomicFuncs are the sync/atomic free functions whose first argument is the
// address being operated on.
var atomicFuncPrefixes = []string{
	"Load", "Store", "Add", "Swap", "CompareAndSwap", "Or", "And",
}

func isAtomicFunc(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	for _, p := range atomicFuncPrefixes {
		if strings.HasPrefix(fn.Name(), p) {
			return true
		}
	}
	return false
}

// isTypedAtomic reports whether t is one of sync/atomic's method-based
// wrapper types.
func isTypedAtomic(t types.Type) bool {
	n := namedType(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	if n.Obj().Pkg().Path() != "sync/atomic" {
		return false
	}
	switch n.Obj().Name() {
	case "Bool", "Int32", "Int64", "Uint32", "Uint64", "Uintptr", "Pointer", "Value":
		return true
	}
	return false
}

func (c *AtomicChecker) Run(u *Unit) []Diagnostic {
	// Pass A: find fields used via sync/atomic free functions, and remember
	// the exact &x.f sites so pass B does not flag them.
	atomicFields := make(map[types.Object][]token.Pos) // field -> first atomic sites
	atomicUseSites := make(map[ast.Expr]bool)          // the SelectorExpr/Ident under &
	u.EachFile(func(p *Package, f *ast.File) {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !isAtomicFunc(p.Info.Uses[sel.Sel]) {
				return true
			}
			un, ok := call.Args[0].(*ast.UnaryExpr)
			if !ok || un.Op != token.AND {
				return true
			}
			if fld := fieldObject(p.Info, un.X); fld != nil {
				atomicFields[fld] = append(atomicFields[fld], un.X.Pos())
				atomicUseSites[un.X] = true
			}
			return true
		})
	})
	var diags []Diagnostic
	// Pass B: every other use of those field objects is a plain access.
	u.EachFile(func(p *Package, f *ast.File) {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			switch e := n.(type) {
			case *ast.SelectorExpr:
				fv, ok := p.Info.Uses[e.Sel].(*types.Var)
				if !ok || !fv.IsField() {
					return true
				}
				var fld types.Object = fv
				if sites, ok := atomicFields[fld]; ok && !atomicUseSites[ast.Expr(e)] {
					if !insideAtomicAddr(stack) && !compositeLitKey(stack, e) {
						diags = append(diags, Diagnostic{
							Pos:   u.Position(e.Pos()),
							Check: c.Name(),
							Message: fmt.Sprintf(
								"plain access to field %s.%s, which is accessed with sync/atomic at %s; all accesses must be atomic",
								ownerName(fld), fld.Name(), u.Position(sites[0])),
						})
					}
				}
				// Typed atomic wrappers: flag value copies of the field.
				if v, ok := fld.(*types.Var); ok && isTypedAtomic(v.Type()) {
					if d := c.typedAtomicMisuse(u, p, stack, e, v); d != nil {
						diags = append(diags, *d)
					}
				}
			}
			return true
		})
	})
	return diags
}

// fieldObject resolves expr to a struct field object (x.f or bare f inside a
// method via the implicit receiver is not resolved — only selector forms).
func fieldObject(info *types.Info, expr ast.Expr) types.Object {
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	obj := info.Uses[sel.Sel]
	if v, ok := obj.(*types.Var); ok && v.IsField() {
		return v
	}
	return nil
}

// ownerName renders the declaring struct of a field as pkg.Type when
// recoverable, else the package name.
func ownerName(fld types.Object) string {
	if fld.Pkg() == nil {
		return "?"
	}
	return pkgShortName(fld.Pkg())
}

// insideAtomicAddr reports whether the innermost enclosing expression chain
// is &<expr> passed directly to a sync/atomic call — already validated in
// pass A, approximated here by any enclosing unary & (taking the address of
// an atomic field for any other purpose is flagged by the typed rules below,
// and &f is not itself a data race).
func insideAtomicAddr(stack []ast.Node) bool {
	for i := len(stack) - 2; i >= 0 && i >= len(stack)-4; i-- {
		if un, ok := stack[i].(*ast.UnaryExpr); ok && un.Op == token.AND {
			return true
		}
	}
	return false
}

// compositeLitKey reports whether sel is the key of a composite literal
// element (Foo{f: 0}) — construction, not access.
func compositeLitKey(stack []ast.Node, sel *ast.SelectorExpr) bool {
	if len(stack) < 2 {
		return false
	}
	if kv, ok := stack[len(stack)-2].(*ast.KeyValueExpr); ok && kv.Key == ast.Expr(sel) {
		return true
	}
	return false
}

// typedAtomicMisuse flags uses of a typed-atomic field other than method
// calls on it, taking its address, or selecting through it.
func (c *AtomicChecker) typedAtomicMisuse(u *Unit, p *Package, stack []ast.Node, e *ast.SelectorExpr, v *types.Var) *Diagnostic {
	if len(stack) < 2 {
		return nil
	}
	switch parent := stack[len(stack)-2].(type) {
	case *ast.SelectorExpr:
		if parent.X == ast.Expr(e) {
			return nil // x.f.Load() — method access through the wrapper
		}
	case *ast.UnaryExpr:
		if parent.Op == token.AND {
			return nil // &x.f — pointer to the wrapper, races stay impossible
		}
	case *ast.KeyValueExpr:
		if parent.Key == ast.Expr(e) {
			return nil // composite literal key
		}
	case *ast.AssignStmt:
		for _, lhs := range parent.Lhs {
			if lhs == ast.Expr(e) {
				return &Diagnostic{
					Pos:   u.Position(e.Pos()),
					Check: c.Name(),
					Message: fmt.Sprintf("assignment overwrites atomic field %s (%s) with a plain store; use its methods",
						e.Sel.Name, v.Type()),
				}
			}
		}
	}
	// Any remaining context reads the wrapper by value: a copy that strips
	// atomicity (and trips the embedded noCopy sentinel only under vet).
	return &Diagnostic{
		Pos:   u.Position(e.Pos()),
		Check: c.Name(),
		Message: fmt.Sprintf("field %s (%s) copied by value; atomic wrappers must be used via their methods",
			e.Sel.Name, v.Type()),
	}
}
