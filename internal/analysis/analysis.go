// Package analysis is a from-scratch static-analysis driver for the DPR
// codebase, built on the standard library's go/parser + go/ast + go/types
// only (no x/tools). It type-checks the whole module and runs a suite of
// DPR-specific checkers that turn the repo's hand-enforced invariants —
// atomic access discipline, mutex release and ordering, allocation-free hot
// paths, world-line-tagged cuts, bounds-checked alias decoders — into a
// mechanical gate (cmd/dpr-vet).
//
// Checkers report Diagnostics; suppressions are written in the source as
//
//	//dpr:ignore <check>[,<check>...] <justification>
//
// and every suppression must carry a non-empty justification, or the
// suppression itself becomes a diagnostic.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Check, d.Message)
}

// Checker is one invariant checker run over a loaded Unit.
type Checker interface {
	Name() string
	Run(u *Unit) []Diagnostic
}

// Package is one type-checked package of the module under analysis.
type Package struct {
	Path  string // import path
	Dir   string // absolute directory
	Name  string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Unit is the whole loaded module: every package, sharing one FileSet and
// one type-object world, so a field object seen in package A is identical to
// the same field seen from package B.
//
// The unit also owns the whole-program artifacts the checkers share — the
// declared-function index, the call graph, and the held-lock summaries — so
// one parse+type-check pass feeds every checker instead of each checker
// re-deriving its own view of the module.
type Unit struct {
	Fset       *token.FileSet
	ModulePath string
	ModuleDir  string
	Packages   []*Package // dependency order (imports before importers)

	cache struct {
		funcs        []funcSpan
		funcsBuilt   bool
		graph        *callGraph
		summaries    *lockSummaries
		drainCoupled map[string]token.Pos
	}
}

// Position resolves a token.Pos against the unit's FileSet.
func (u *Unit) Position(p token.Pos) token.Position { return u.Fset.Position(p) }

// EachFile invokes fn for every file of every package.
func (u *Unit) EachFile(fn func(p *Package, f *ast.File)) {
	for _, p := range u.Packages {
		for _, f := range p.Files {
			fn(p, f)
		}
	}
}

// DefaultCheckers returns the full DPR checker suite.
func DefaultCheckers() []Checker {
	return []Checker{
		&AtomicChecker{},
		&MutexChecker{},
		&NoAllocChecker{},
		&CutWorldLineChecker{},
		&DecodeBoundsChecker{},
		&EpochChecker{},
		&LockOrderGlobalChecker{},
		&GoroutineChecker{},
		&MigrationProtocolChecker{},
	}
}

// CheckerNames lists the names of the given checkers.
func CheckerNames(cs []Checker) []string {
	names := make([]string, len(cs))
	for i, c := range cs {
		names[i] = c.Name()
	}
	return names
}

// Run executes the checkers over the unit, applies //dpr:ignore
// suppressions, and returns the surviving diagnostics sorted by position.
// Malformed suppressions (no justification, unknown syntax) are returned as
// diagnostics of check "dpr-ignore".
func Run(u *Unit, checkers []Checker) []Diagnostic {
	var diags []Diagnostic
	for _, c := range checkers {
		diags = append(diags, c.Run(u)...)
	}
	ign, ignDiags := collectIgnores(u)
	diags = ign.filter(diags)
	diags = append(diags, ignDiags...)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Check < diags[j].Check
	})
	return diags
}

// ---- shared type helpers ----

// deref strips one level of pointer.
func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// namedType returns the named type behind t (through one pointer and
// aliases), or nil.
func namedType(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	n, _ := deref(types.Unalias(t)).(*types.Named)
	return n
}

// isPkgType reports whether t is (a pointer to) the named type pkgPath.name.
// The package is matched by exact import path or, when lastSegment is true,
// by the path's last segment — fixture corpora declare their own mini "core"
// package and still exercise the core-type checkers.
func isPkgType(t types.Type, pkgPath, name string, lastSegment bool) bool {
	n := namedType(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	if n.Obj().Name() != name {
		return false
	}
	p := n.Obj().Pkg().Path()
	if p == pkgPath {
		return true
	}
	if lastSegment {
		want := pkgPath[strings.LastIndex(pkgPath, "/")+1:]
		return p == want || strings.HasSuffix(p, "/"+want)
	}
	return false
}

// pkgShortName returns the last segment of a package path ("" for nil).
func pkgShortName(p *types.Package) string {
	if p == nil {
		return ""
	}
	path := p.Path()
	return path[strings.LastIndex(path, "/")+1:]
}

// exprString renders an expression compactly (types.ExprString).
func exprString(e ast.Expr) string { return types.ExprString(e) }

// funcSpan describes a declared function's extent in a file.
type funcSpan struct {
	pkg       *Package
	decl      *ast.FuncDecl
	name      string // receiver-qualified, e.g. (*Worker).Reply
	file      string
	startLine int
	endLine   int
}

// declaredFuncs lists every FuncDecl with a body across the unit. The list
// is built once and cached on the unit: every checker iterates it, and the
// call graph indexes into it.
func declaredFuncs(u *Unit) []funcSpan {
	if u.cache.funcsBuilt {
		return u.cache.funcs
	}
	var out []funcSpan
	u.EachFile(func(p *Package, f *ast.File) {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			start := u.Position(fd.Pos())
			end := u.Position(fd.Body.Rbrace)
			out = append(out, funcSpan{
				pkg:       p,
				decl:      fd,
				name:      funcDisplayName(fd),
				file:      start.Filename,
				startLine: start.Line,
				endLine:   end.Line,
			})
		}
	})
	u.cache.funcs = out
	u.cache.funcsBuilt = true
	return out
}

func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	return "(" + exprString(fd.Recv.List[0].Type) + ")." + fd.Name.Name
}
