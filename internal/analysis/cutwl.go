package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// CutWorldLineChecker enforces the world-line tagging discipline from the
// PR 2 bug class: version numbers restart across world-lines, so a DPR cut
// travelling without the world-line it was observed on can be applied to the
// wrong world — a client session commits erased operations whose tokens
// merely collide numerically.
//
// The rule: any scope that carries a core.Cut must carry a world-line tag in
// the same scope.
//
//   - A struct with a Cut-typed field must also have a field typed
//     core.WorldLine, core.WorldLineTracker, or a field whose own struct
//     type satisfies the rule (the atomic {wl, cut, encoded} snapshot
//     pattern). A map keyed by WorldLine with Cut values is self-tagging.
//   - A declared function with a Cut parameter or result must also carry a
//     WorldLine (or tracker) among its parameters/results, or hang off a
//     receiver whose struct satisfies the struct rule.
//   - Methods of the Cut type itself (its algebra: Get, Clone, Merge, ...)
//     are exempt, as are function *types* (signatures stored in config
//     fields are checked where a concrete function is declared).
//
// Migration boundaries are cut positions and follow the same rule: a
// core.Version-typed struct field, parameter, or named result whose name
// contains "boundary" (or a core.Version result of a function whose own
// name contains "Boundary") is only meaningful on the world-line it was
// sealed on — the donor freezes at it, the stream carries it, and the
// target pins it under the cut. Moving one without a world-line in the
// same scope reproduces the numeric-collision bug across a rollback that
// lands mid-migration.
//
// The core types are matched by name within any package named "core", so
// the checker's fixtures can declare a miniature core package.
type CutWorldLineChecker struct{}

func (*CutWorldLineChecker) Name() string { return "cut-worldline" }

const corePkgPath = "dpr/internal/core"

func isCut(t types.Type) bool       { return isPkgType(t, corePkgPath, "Cut", true) }
func isVersion(t types.Type) bool   { return isPkgType(t, corePkgPath, "Version", true) }
func isWorldLine(t types.Type) bool { return isPkgType(t, corePkgPath, "WorldLine", true) }
func isWorldLineTracker(t types.Type) bool {
	return isPkgType(t, corePkgPath, "WorldLineTracker", true)
}

// carriesUntaggedCut reports whether t is a bare cut carrier: Cut itself, or
// a pointer/slice/array of Cut, or a map with Cut values not keyed by
// WorldLine.
func carriesUntaggedCut(t types.Type) bool {
	if t == nil {
		return false
	}
	if isCut(t) {
		return true
	}
	switch tt := types.Unalias(t).(type) {
	case *types.Pointer:
		return carriesUntaggedCut(tt.Elem())
	case *types.Slice:
		return carriesUntaggedCut(tt.Elem())
	case *types.Array:
		return carriesUntaggedCut(tt.Elem())
	case *types.Map:
		if isWorldLine(tt.Key()) {
			return false // wl -> cut maps are tagged by construction
		}
		return carriesUntaggedCut(tt.Elem())
	}
	return false
}

// isBoundaryName matches identifiers that name a migration boundary.
func isBoundaryName(name string) bool {
	return strings.Contains(strings.ToLower(name), "boundary")
}

// carriesVersion reports whether t is core.Version or a pointer/slice/array
// of it — the carrier shapes a migration boundary travels in.
func carriesVersion(t types.Type) bool {
	if t == nil {
		return false
	}
	if isVersion(t) {
		return true
	}
	switch tt := types.Unalias(t).(type) {
	case *types.Pointer:
		return carriesVersion(tt.Elem())
	case *types.Slice:
		return carriesVersion(tt.Elem())
	case *types.Array:
		return carriesVersion(tt.Elem())
	}
	return false
}

// carriesWorldLine reports whether t provides a world-line tag. Containers
// of world-lines count (a []WorldLine running parallel to a []Cut is a tag),
// mirroring carriesUntaggedCut's container handling.
func carriesWorldLine(t types.Type) bool {
	if t == nil {
		return false
	}
	if isWorldLine(t) || isWorldLineTracker(t) {
		return true
	}
	switch tt := types.Unalias(t).(type) {
	case *types.Pointer:
		return carriesWorldLine(tt.Elem())
	case *types.Slice:
		return carriesWorldLine(tt.Elem())
	case *types.Array:
		return carriesWorldLine(tt.Elem())
	}
	return false
}

// structCarries reports, for a struct type, whether it has untagged cut
// fields, untagged migration-boundary fields (core.Version fields named
// *boundary*), and whether it has a world-line tag. A field whose own struct
// type is internally tagged (carries both) neutralizes its cut.
// atomic.Pointer[T] fields look through to T.
func structCarries(t types.Type, seen map[types.Type]bool) (hasCut, hasBoundary, hasWL bool) {
	if t == nil || seen[t] {
		return false, false, false
	}
	seen[t] = true
	st, ok := deref(types.Unalias(t)).Underlying().(*types.Struct)
	if !ok {
		return false, false, false
	}
	for i := 0; i < st.NumFields(); i++ {
		ft := st.Field(i).Type()
		ft = lookThroughAtomicPointer(ft)
		if carriesWorldLine(ft) {
			hasWL = true
			continue
		}
		if carriesUntaggedCut(ft) {
			hasCut = true
			continue
		}
		if isBoundaryName(st.Field(i).Name()) && carriesVersion(ft) {
			hasBoundary = true // a migration boundary is a cut position
			continue
		}
		// Nested struct field: internally tagged pairs are fine; a nested
		// struct with an untagged cut propagates the cut upward.
		if _, isFunc := ft.Underlying().(*types.Signature); isFunc {
			continue
		}
		if nested := namedType(ft); nested != nil {
			nc, nb, nw := structCarries(nested, seen)
			if nc && !nw {
				hasCut = true
			}
			if nb && !nw {
				hasBoundary = true
			}
			if nw && !nc && !nb {
				hasWL = true
			}
		}
	}
	return hasCut, hasBoundary, hasWL
}

// lookThroughAtomicPointer unwraps atomic.Pointer[T] to *T so the snapshot
// pattern (cutSnap atomic.Pointer[cutSnapshot]) is inspected as the struct
// it publishes.
func lookThroughAtomicPointer(t types.Type) types.Type {
	n := namedType(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return t
	}
	if n.Obj().Pkg().Path() == "sync/atomic" && n.Obj().Name() == "Pointer" {
		if args := n.TypeArgs(); args != nil && args.Len() == 1 {
			return types.NewPointer(args.At(0))
		}
	}
	return t
}

func (c *CutWorldLineChecker) Run(u *Unit) []Diagnostic {
	var diags []Diagnostic
	// Struct rule.
	u.EachFile(func(p *Package, f *ast.File) {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				obj := p.Info.Defs[ts.Name]
				if obj == nil {
					continue
				}
				if _, isStruct := obj.Type().Underlying().(*types.Struct); !isStruct {
					continue
				}
				hasCut, hasBoundary, hasWL := structCarries(obj.Type(), map[types.Type]bool{})
				if hasCut && !hasWL {
					diags = append(diags, Diagnostic{
						Pos:   u.Position(ts.Pos()),
						Check: c.Name(),
						Message: fmt.Sprintf("struct %s carries a core.Cut but no world-line tag (core.WorldLine or WorldLineTracker field); cuts must travel with the world-line they were observed on",
							ts.Name.Name),
					})
				} else if hasBoundary && !hasWL {
					diags = append(diags, Diagnostic{
						Pos:   u.Position(ts.Pos()),
						Check: c.Name(),
						Message: fmt.Sprintf("struct %s carries a migration boundary (core.Version field named *boundary*) but no world-line tag; boundaries are cut positions and must travel with the world-line they were sealed on",
							ts.Name.Name),
					})
				}
			}
		}
	})
	// Function rule (declared functions and interface methods).
	for _, fs := range declaredFuncs(u) {
		if d := c.checkSignature(u, fs.pkg, fs.decl, fs.name); d != nil {
			diags = append(diags, *d)
		}
	}
	diags = append(diags, c.checkInterfaces(u)...)
	return diags
}

func (c *CutWorldLineChecker) checkSignature(u *Unit, p *Package, fd *ast.FuncDecl, name string) *Diagnostic {
	obj, ok := p.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return nil
	}
	sig := obj.Type().(*types.Signature)
	if v, ok := signatureViolation(sig, fd.Name.Name); ok {
		return &Diagnostic{
			Pos:   u.Position(fd.Pos()),
			Check: c.Name(),
			Message: fmt.Sprintf("%s %s %s but no world-line appears in the signature or receiver scope",
				name, v.verb, v.what),
		}
	}
	return nil
}

func (c *CutWorldLineChecker) checkInterfaces(u *Unit) []Diagnostic {
	var diags []Diagnostic
	u.EachFile(func(p *Package, f *ast.File) {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			it, ok := ts.Type.(*ast.InterfaceType)
			if !ok {
				return true
			}
			for _, m := range it.Methods.List {
				ft, ok := p.Info.TypeOf(m.Type).(*types.Signature)
				if !ok || len(m.Names) == 0 {
					continue
				}
				if v, bad := signatureViolation(ft, m.Names[0].Name); bad {
					diags = append(diags, Diagnostic{
						Pos:   u.Position(m.Pos()),
						Check: c.Name(),
						Message: fmt.Sprintf("interface method %s.%s %s %s but no world-line appears in the signature",
							ts.Name.Name, m.Names[0].Name, v.verb, v.what),
					})
				}
			}
			return false
		})
	})
	return diags
}

// sigViolation describes an untagged carrier moving through a signature:
// the verb ("takes", "returns", "passes and returns") and what moved
// ("a core.Cut" or "a migration boundary (core.Version)").
type sigViolation struct {
	verb string
	what string
}

// signatureViolation reports whether sig moves an untagged cut position: it
// names a Cut — or a migration boundary, a core.Version parameter/result
// named *boundary* or any core.Version result of a *Boundary*-named function
// — without a WorldLine in params, results, or the receiver's struct.
// Methods on the Cut and Version types themselves are exempt.
func signatureViolation(sig *types.Signature, fnName string) (sigViolation, bool) {
	cutIn, cutOut, bIn, bOut, hasWL := false, false, false, false, false
	boundaryFn := isBoundaryName(fnName)
	scan := func(tp *types.Tuple, in bool) {
		for i := 0; i < tp.Len(); i++ {
			t := tp.At(i).Type()
			if carriesWorldLine(t) {
				hasWL = true
			}
			if carriesUntaggedCut(t) {
				if in {
					cutIn = true
				} else {
					cutOut = true
				}
			}
			if carriesVersion(t) && (isBoundaryName(tp.At(i).Name()) || (!in && boundaryFn)) {
				if in {
					bIn = true
				} else {
					bOut = true
				}
			}
		}
	}
	scan(sig.Params(), true)
	scan(sig.Results(), false)
	if recv := sig.Recv(); recv != nil {
		rt := recv.Type()
		if isCut(rt) || isVersion(deref(rt)) {
			return sigViolation{}, false // Cut's / Version's own algebra
		}
		if carriesWorldLine(rt) {
			hasWL = true
		}
		if _, _, rw := structCarries(rt, map[types.Type]bool{}); rw {
			hasWL = true
		}
	}
	in, out := cutIn || bIn, cutOut || bOut
	if (!in && !out) || hasWL {
		return sigViolation{}, false
	}
	what := "a core.Cut"
	if !cutIn && !cutOut {
		what = "a migration boundary (core.Version)"
	}
	switch {
	case in && out:
		return sigViolation{"passes and returns", what}, true
	case in:
		return sigViolation{"takes", what}, true
	default:
		return sigViolation{"returns", what}, true
	}
}
