package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GoroutineChecker enforces goroutine lifecycle discipline in the serving
// stack: every `go` statement in the dfaster, dredis, libdpr, metadata and
// migration packages must have a stop path reachable from its owner's
// Stop/Close — otherwise the goroutine leaks past shutdown and can wedge
// it (the PR 1 Worker.Stop hang class). Accepted evidence, gathered from
// the spawned body and the functions it calls (through the unit call
// graph):
//
//   - a joined WaitGroup: the body calls Done() on a WaitGroup that some
//     function in the module Waits on;
//   - a done channel: the body receives from (or selects on, or ranges
//     over) a channel that some function closes, or from a context's
//     Done();
//   - an owner-closed connection: the goroutine works on a net.Conn or
//     net.Listener (tracked conn, accept loop, pipe) and the owner type's
//     Stop/Close/Shutdown reaches a Close() on such a value, so blocking
//     reads unblock with an error at shutdown.
//
// Evidence is deliberately coarse — the checker's job is catching the
// total absence of any stop mechanism, not validating the mechanism's
// correctness. A by-design fire-and-forget goroutine documents itself with
// //dpr:ignore.
type GoroutineChecker struct{}

func (*GoroutineChecker) Name() string { return "goroutine-lifecycle" }

// goroutineScope lists the server packages under lifecycle discipline
// (matched by package name, so fixtures can declare mini packages).
var goroutineScope = map[string]bool{
	"dfaster": true, "dredis": true, "libdpr": true, "metadata": true, "migration": true,
}

// stopMethodNames are the owner entry points a stop path must hang off.
var stopMethodNames = map[string]bool{
	"Stop": true, "Close": true, "Shutdown": true,
}

func (c *GoroutineChecker) Run(u *Unit) []Diagnostic {
	g := unitGraph(u)
	ev := newLifecycleEvidence(u, g)
	var diags []Diagnostic
	for _, site := range g.goSites {
		if !goroutineScope[site.fs.pkg.Name] {
			continue
		}
		pos := u.Position(site.stmt.Pos())
		if strings.HasSuffix(pos.Filename, "_test.go") {
			continue
		}
		if ev.hasStopPath(site) {
			continue
		}
		diags = append(diags, Diagnostic{
			Pos:   pos,
			Check: c.Name(),
			Message: "go statement has no stop path reachable from an owner Stop/Close: no joined WaitGroup (Done+Wait), no receive on a closed done channel, and no owner-closed conn/listener — the goroutine can leak past shutdown and wedge Stop",
		})
	}
	return diags
}

// lifecycleEvidence holds the unit-wide facts the per-site scan consults.
type lifecycleEvidence struct {
	u     *Unit
	g     *callGraph
	waited map[types.Object]bool // WaitGroups with a Wait() call somewhere
	closed map[types.Object]bool // channels with a close() call somewhere
	// netClosers: declared functions whose body closes a net.Conn/Listener.
	netClosers map[*types.Func]bool
	ownerMemo  map[*types.Named]bool
}

func newLifecycleEvidence(u *Unit, g *callGraph) *lifecycleEvidence {
	ev := &lifecycleEvidence{
		u: u, g: g,
		waited:     make(map[types.Object]bool),
		closed:     make(map[types.Object]bool),
		netClosers: make(map[*types.Func]bool),
		ownerMemo:  make(map[*types.Named]bool),
	}
	funcs := declaredFuncs(u)
	for i := range funcs {
		fs := &funcs[i]
		fn, _ := fs.pkg.Info.Defs[fs.decl.Name].(*types.Func)
		ast.Inspect(fs.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				if fun.Name == "close" && len(call.Args) == 1 {
					if obj := referencedObject(fs.pkg, call.Args[0]); obj != nil {
						ev.closed[obj] = true
					}
				}
			case *ast.SelectorExpr:
				switch fun.Sel.Name {
				case "Wait":
					if m, ok := fs.pkg.Info.Uses[fun.Sel].(*types.Func); ok && isWaitGroupMethod(m) {
						if obj := referencedObject(fs.pkg, fun.X); obj != nil {
							ev.waited[obj] = true
						}
					}
				case "Close", "close", "closeAll":
					if fn != nil && closesNetValue(fs.pkg, fun) {
						ev.netClosers[fn] = true
					}
				}
			}
			return true
		})
	}
	return ev
}

func isWaitGroupMethod(m *types.Func) bool {
	sig, ok := m.Type().(*types.Signature)
	return ok && sig.Recv() != nil && isPkgType(sig.Recv().Type(), "sync", "WaitGroup", false)
}

// closesNetValue reports whether sel is a Close-ish call on a net.Conn /
// net.Listener / concrete net type, or on a named type containing one (a
// tracked-conn wrapper closing its conn counts via its own body; a
// connTracker.closeAll call counts because the tracker holds conns).
func closesNetValue(pkg *Package, sel *ast.SelectorExpr) bool {
	t := pkg.Info.TypeOf(sel.X)
	return t != nil && typeTouchesNet(t, 0)
}

// typeTouchesNet reports whether t is (or structurally contains, to a small
// depth) a net.Conn, net.Listener, or any named type from package net.
func typeTouchesNet(t types.Type, depth int) bool {
	if t == nil || depth > 3 {
		return false
	}
	if n := namedType(t); n != nil && n.Obj() != nil && n.Obj().Pkg() != nil {
		if n.Obj().Pkg().Path() == "net" {
			return true
		}
	}
	switch tt := deref(types.Unalias(t)).(type) {
	case *types.Named:
		if st, ok := tt.Underlying().(*types.Struct); ok {
			for i := 0; i < st.NumFields(); i++ {
				if typeTouchesNet(st.Field(i).Type(), depth+1) {
					return true
				}
			}
		}
		if _, ok := tt.Underlying().(*types.Interface); ok {
			// Named interfaces from package net were caught above; other
			// interfaces (io.Closer etc.) are not conn evidence.
			return false
		}
	case *types.Struct:
		for i := 0; i < tt.NumFields(); i++ {
			if typeTouchesNet(tt.Field(i).Type(), depth+1) {
				return true
			}
		}
	case *types.Map:
		return typeTouchesNet(tt.Key(), depth+1) || typeTouchesNet(tt.Elem(), depth+1)
	case *types.Slice:
		return typeTouchesNet(tt.Elem(), depth+1)
	}
	return false
}

// referencedObject resolves an expression to the field or variable object
// it denotes (identical across packages in the shared type world).
func referencedObject(pkg *Package, e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := pkg.Info.Uses[x]; obj != nil {
			return obj
		}
		return pkg.Info.Defs[x]
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[x]; ok {
			return sel.Obj()
		}
		return pkg.Info.Uses[x.Sel]
	}
	return nil
}

// hasStopPath gathers evidence for one go site.
func (ev *lifecycleEvidence) hasStopPath(site goSite) bool {
	scan := &siteScan{ev: ev, visited: make(map[*types.Func]bool)}
	call := site.stmt.Call
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		scan.body(site.fs.pkg, lit.Body, 0)
	} else {
		for _, callee := range ev.g.siteCallees[call] {
			if fs, ok := ev.g.spanOf[callee]; ok {
				scan.visited[callee] = true
				scan.body(fs.pkg, fs.decl.Body, 0)
			}
		}
	}
	if scan.found {
		return true
	}
	// Conn evidence: the goroutine works on a conn/listener and the owner
	// type's Stop/Close reaches a function that closes one.
	if scan.touchesConn || spawnTouchesConn(site) {
		if owner := spawnOwner(site); owner != nil && ev.ownerClosesConns(owner) {
			return true
		}
	}
	return false
}

// siteScan walks a goroutine body (and its callees, depth-bounded) for
// WaitGroup-join and done-channel evidence.
type siteScan struct {
	ev          *lifecycleEvidence
	visited     map[*types.Func]bool
	found       bool
	touchesConn bool
}

const maxEvidenceDepth = 4

func (s *siteScan) body(pkg *Package, body ast.Node, depth int) {
	if s.found || depth > maxEvidenceDepth {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if s.found {
			return false
		}
		switch node := n.(type) {
		case *ast.GoStmt:
			return false // a child goroutine's evidence is its own
		case *ast.UnaryExpr:
			if node.Op == token.ARROW {
				s.receive(pkg, node.X)
			}
		case *ast.RangeStmt:
			if t := pkg.Info.TypeOf(node.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					s.receive(pkg, node.X)
				}
			}
		case *ast.CallExpr:
			if sel, ok := node.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
				if m, ok := pkg.Info.Uses[sel.Sel].(*types.Func); ok && isWaitGroupMethod(m) {
					if obj := referencedObject(pkg, sel.X); obj != nil && s.ev.waited[obj] {
						s.found = true
						return false
					}
				}
			}
			for _, callee := range s.ev.g.siteCallees[node] {
				if s.visited[callee] {
					continue
				}
				s.visited[callee] = true
				if fs, ok := s.ev.g.spanOf[callee]; ok {
					s.body(fs.pkg, fs.decl.Body, depth+1)
				}
			}
		case *ast.Ident, *ast.SelectorExpr:
			if !s.touchesConn {
				if t := pkg.Info.TypeOf(n.(ast.Expr)); t != nil && typeTouchesNet(t, 0) {
					s.touchesConn = true
				}
			}
		}
		return true
	})
}

// receive records done-channel evidence for a received-from expression.
func (s *siteScan) receive(pkg *Package, e ast.Expr) {
	e = ast.Unparen(e)
	if call, ok := e.(*ast.CallExpr); ok {
		// <-ctx.Done() and friends: a cancelable source.
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
			s.found = true
		}
		return
	}
	if obj := referencedObject(pkg, e); obj != nil && s.ev.closed[obj] {
		s.found = true
	}
}

// spawnOwner is the named receiver type of the function containing the go
// statement — the owner whose Stop/Close must provide the stop path.
func spawnOwner(site goSite) *types.Named {
	fd := site.fs.decl
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return nil
	}
	return namedType(site.fs.pkg.Info.TypeOf(fd.Recv.List[0].Type))
}

// spawnTouchesConn reports whether the spawn expression itself carries a
// conn/listener (arguments or receiver).
func spawnTouchesConn(site goSite) bool {
	found := false
	ast.Inspect(site.stmt.Call, func(n ast.Node) bool {
		if found {
			return false
		}
		if e, ok := n.(ast.Expr); ok {
			if t := site.fs.pkg.Info.TypeOf(e); t != nil && typeTouchesNet(t, 0) {
				found = true
			}
		}
		return true
	})
	return found
}

// ownerClosesConns reports whether a Stop/Close/Shutdown method of owner
// reaches (over the call graph) a function that closes a net value.
func (ev *lifecycleEvidence) ownerClosesConns(owner *types.Named) bool {
	if v, ok := ev.ownerMemo[owner]; ok {
		return v
	}
	result := false
	for fn := range ev.g.spanOf {
		if !stopMethodNames[fn.Name()] {
			continue
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			continue
		}
		if namedType(sig.Recv().Type()) != owner {
			continue
		}
		for member := range ev.g.closure(fn) {
			if ev.netClosers[member] {
				result = true
				break
			}
		}
		if result {
			break
		}
	}
	ev.ownerMemo[owner] = result
	return result
}
