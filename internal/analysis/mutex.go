package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MutexChecker enforces the repo's locking discipline:
//
//  1. copy rule — values of types that (transitively) contain a sync.Mutex,
//     sync.RWMutex, sync.Once, sync.WaitGroup or sync.Cond must not be
//     copied: by-value parameters/receivers/results and lock-copying
//     assignments are flagged.
//
//  2. release rule — within a function, every Lock()/RLock() must be
//     released on every return path, either by a dominating defer or by an
//     explicit Unlock on the path. Functions that intentionally hand a held
//     lock to their caller (guarded admission) document it with
//     //dpr:ignore.
//
//  3. order rule — a declared lock-order graph, written in source as
//
//     //dpr:lockorder pkg.Type.field < pkg.Type.field
//
//     ("left is acquired before right, never the reverse"). Acquiring a
//     lock while holding one that the graph says must come after it is
//     flagged. The analysis is per-function over the same abstract state as
//     the release rule.
//
// The release/order analysis is deliberately conservative: branch states
// merge by intersection, so a lock provably held on every path to a return
// is reported and a lock held on only some paths is not.
type MutexChecker struct{}

func (*MutexChecker) Name() string { return "mutex-discipline" }

const lockOrderDirective = "dpr:lockorder"

func (c *MutexChecker) Run(u *Unit) []Diagnostic {
	order, diags := parseLockOrder(u)
	for _, fs := range declaredFuncs(u) {
		diags = append(diags, checkCopyRuleSignature(u, fs)...)
		a := &lockFlow{u: u, pkg: fs.pkg, check: c.Name(), order: order}
		diags = append(diags, a.analyzeFunc(fs.decl.Body)...)
	}
	diags = append(diags, checkCopyRuleBodies(u)...)
	return diags
}

// ---- lock-order graph ----

// lockOrder holds the transitive closure of declared before-edges:
// before[a][b] means a must be acquired before b.
type lockOrder struct {
	before map[string]map[string]token.Pos
}

func (o *lockOrder) mustPrecede(a, b string) (token.Pos, bool) {
	if o == nil {
		return token.NoPos, false
	}
	p, ok := o.before[a][b]
	return p, ok
}

func parseLockOrder(u *Unit) (*lockOrder, []Diagnostic) {
	o := &lockOrder{before: make(map[string]map[string]token.Pos)}
	var diags []Diagnostic
	add := func(a, b string, pos token.Pos) {
		if o.before[a] == nil {
			o.before[a] = make(map[string]token.Pos)
		}
		if _, ok := o.before[a][b]; !ok {
			o.before[a][b] = pos
		}
	}
	for _, d := range directiveComments(u, lockOrderDirective) {
		parts := strings.Split(d.text, "<")
		if len(parts) < 2 {
			diags = append(diags, Diagnostic{Pos: u.Position(d.pos), Check: "mutex-discipline",
				Message: "malformed //dpr:lockorder (want \"a < b [< c ...]\"): " + d.text})
			continue
		}
		names := make([]string, len(parts))
		bad := false
		for i, p := range parts {
			names[i] = strings.TrimSpace(p)
			if names[i] == "" {
				bad = true
			}
		}
		if bad {
			diags = append(diags, Diagnostic{Pos: u.Position(d.pos), Check: "mutex-discipline",
				Message: "malformed //dpr:lockorder (empty lock name): " + d.text})
			continue
		}
		for i := 0; i < len(names); i++ {
			for j := i + 1; j < len(names); j++ {
				add(names[i], names[j], d.pos)
			}
		}
	}
	// Transitive closure (the graphs are tiny).
	for changed := true; changed; {
		changed = false
		for a, bs := range o.before {
			for b := range bs {
				for c := range o.before[b] {
					if _, ok := o.before[a][c]; !ok {
						add(a, c, o.before[a][b])
						changed = true
					}
				}
			}
		}
	}
	return o, diags
}

// ---- lock identification ----

type lockOp struct {
	instance string // per-function instance key, e.g. "w.cutMu"
	typeKey  string // module-wide key, e.g. "libdpr.Worker.cutMu"
	keyed    bool   // typeKey is owner-qualified (field or package-level lock)
	acquire  bool
	shared   bool // RLock/RUnlock
}

// classifyLockCall recognizes x.Lock / x.Unlock / x.RLock / x.RUnlock calls
// on sync.Mutex / sync.RWMutex (including promoted methods of embedded
// locks).
func classifyLockCall(pkg *Package, call *ast.CallExpr) (lockOp, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	var op lockOp
	switch sel.Sel.Name {
	case "Lock":
		op.acquire = true
	case "RLock":
		op.acquire, op.shared = true, true
	case "Unlock":
	case "RUnlock":
		op.shared = true
	default:
		return lockOp{}, false
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockOp{}, false
	}
	recv := namedType(fn.Type().(*types.Signature).Recv().Type())
	if recv == nil {
		return lockOp{}, false
	}
	switch recv.Obj().Name() {
	case "Mutex", "RWMutex":
	default:
		return lockOp{}, false
	}
	op.instance = exprString(sel.X)
	op.typeKey, op.keyed = lockTypeKey(pkg, sel.X)
	return op, true
}

// lockTypeKey renders the mutex expression as a module-wide lock name:
// "pkg.Type.field" for field locks, "pkg.name" for package-level locks, and
// the local name for everything else. keyed reports whether the name is
// owner-qualified — only keyed locks participate in the whole-program
// nesting graph; anonymous locals (stripe locks pulled out of an index)
// have no module-wide identity.
func lockTypeKey(pkg *Package, x ast.Expr) (key string, keyed bool) {
	switch e := x.(type) {
	case *ast.SelectorExpr:
		ownerT := pkg.Info.TypeOf(e.X)
		if n := namedType(ownerT); n != nil && n.Obj().Pkg() != nil {
			return pkgShortName(n.Obj().Pkg()) + "." + n.Obj().Name() + "." + e.Sel.Name, true
		}
		return exprString(x), false
	case *ast.Ident:
		if obj := pkg.Info.Uses[e]; obj != nil {
			if v, ok := obj.(*types.Var); ok && v.Pkg() != nil {
				if v.Parent() == v.Pkg().Scope() { // package-level mutex
					return pkgShortName(v.Pkg()) + "." + v.Name(), true
				}
				// A local whose type names the lock owner (method receivers
				// do not appear here; fields always go through selectors).
				if n := namedType(v.Type()); n != nil && n.Obj().Pkg() != nil {
					return pkgShortName(n.Obj().Pkg()) + "." + n.Obj().Name(), false
				}
			}
		}
		return e.Name, false
	default:
		return exprString(x), false
	}
}

// ---- abstract interpretation for release + order rules ----

type heldLock struct {
	op       lockOp
	pos      token.Pos
	deferred bool
}

type lockState struct {
	held map[string]*heldLock // instance key -> lock
	// deferredRelease records instance keys covered by a defer that has
	// already been sequenced (defer before a re-acquire in a loop).
	deferredRelease map[string]bool
	terminated      bool // path ended in return/panic
}

func newLockState() *lockState {
	return &lockState{held: map[string]*heldLock{}, deferredRelease: map[string]bool{}}
}

func (s *lockState) clone() *lockState {
	n := newLockState()
	for k, v := range s.held {
		cp := *v
		n.held[k] = &cp
	}
	for k := range s.deferredRelease {
		n.deferredRelease[k] = true
	}
	return n
}

// merge intersects branch exit states: a lock is definitely held after the
// branch only if every non-terminated branch holds it.
func mergeStates(states []*lockState) *lockState {
	var live []*lockState
	for _, s := range states {
		if s != nil && !s.terminated {
			live = append(live, s)
		}
	}
	if len(live) == 0 {
		s := newLockState()
		s.terminated = true
		return s
	}
	out := live[0].clone()
	for k, h := range out.held {
		for _, s := range live[1:] {
			other, ok := s.held[k]
			if !ok {
				delete(out.held, k)
				break
			}
			if other.deferred {
				h.deferred = true
			}
		}
	}
	for _, s := range live[1:] {
		for k := range s.deferredRelease {
			out.deferredRelease[k] = true
		}
	}
	return out
}

type lockFlow struct {
	u     *Unit
	pkg   *Package
	check string
	order *lockOrder
	diags []Diagnostic
	// onCall, when set, observes every call expression reached by the
	// interpreter together with the abstract lock state in force just before
	// the call. The whole-program pass (lock summaries) uses it to record
	// held-at-call and held-at-acquire sets; the mutex checker leaves it nil.
	onCall func(call *ast.CallExpr, st *lockState)
}

// noteEmbedded feeds the onCall hook the call expressions embedded in a
// statement (conditions, assignments, returns) with the current state.
// Function-literal subtrees are skipped: they run on their own activation.
func (a *lockFlow) noteEmbedded(s ast.Stmt, st *lockState) {
	if a.onCall == nil {
		return
	}
	var roots []ast.Node
	add := func(e ast.Expr) {
		if e != nil {
			roots = append(roots, e)
		}
	}
	switch n := s.(type) {
	case *ast.ExprStmt:
		add(n.X)
	case *ast.AssignStmt:
		for _, e := range n.Rhs {
			add(e)
		}
		for _, e := range n.Lhs {
			add(e)
		}
	case *ast.ReturnStmt:
		for _, e := range n.Results {
			add(e)
		}
	case *ast.SendStmt:
		add(n.Chan)
		add(n.Value)
	case *ast.IncDecStmt:
		add(n.X)
	case *ast.DeclStmt:
		roots = append(roots, n)
	case *ast.IfStmt:
		add(n.Cond)
	case *ast.ForStmt:
		add(n.Cond)
	case *ast.SwitchStmt:
		add(n.Tag)
	case *ast.RangeStmt:
		add(n.X)
	}
	for _, root := range roots {
		ast.Inspect(root, func(n ast.Node) bool {
			if _, isLit := n.(*ast.FuncLit); isLit {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok {
				a.onCall(call, st)
			}
			return true
		})
	}
}

func (a *lockFlow) analyzeFunc(body *ast.BlockStmt) []Diagnostic {
	st := newLockState()
	a.block(body.List, st)
	if !st.terminated {
		a.reportHeld(st, body.Rbrace, "function end")
	}
	// Nested function literals run on their own goroutine/callstack: analyze
	// each independently.
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			inner := &lockFlow{u: a.u, pkg: a.pkg, check: a.check, order: a.order}
			st := newLockState()
			inner.block(fl.Body.List, st)
			if !st.terminated {
				inner.reportHeld(st, fl.Body.Rbrace, "function end")
			}
			a.diags = append(a.diags, inner.diags...)
			return false
		}
		return true
	})
	return a.diags
}

func (a *lockFlow) reportHeld(st *lockState, at token.Pos, where string) {
	for _, h := range st.held {
		if h.deferred {
			continue
		}
		a.diags = append(a.diags, Diagnostic{
			Pos:   a.u.Position(at),
			Check: a.check,
			Message: fmt.Sprintf("%s.%s acquired at %s is still held at %s (no Unlock or defer on this path)",
				h.op.instance, lockVerb(h.op), a.u.Position(h.pos), where),
		})
	}
}

func lockVerb(op lockOp) string {
	if op.shared {
		return "RLock()"
	}
	return "Lock()"
}

func (a *lockFlow) block(list []ast.Stmt, st *lockState) {
	for _, s := range list {
		if st.terminated {
			return
		}
		a.stmt(s, st)
	}
}

func (a *lockFlow) stmt(s ast.Stmt, st *lockState) {
	a.noteEmbedded(s, st)
	switch n := s.(type) {
	case *ast.ExprStmt:
		if call, ok := n.X.(*ast.CallExpr); ok {
			a.call(call, st)
		}
	case *ast.DeferStmt:
		a.deferStmt(n, st)
	case *ast.ReturnStmt:
		a.reportHeld(st, n.Pos(), "this return")
		st.terminated = true
	case *ast.BlockStmt:
		a.block(n.List, st)
	case *ast.IfStmt:
		if n.Init != nil {
			a.stmt(n.Init, st)
		}
		thenSt := st.clone()
		a.block(n.Body.List, thenSt)
		elseSt := st.clone()
		if n.Else != nil {
			a.stmt(n.Else, elseSt)
		}
		*st = *mergeStates([]*lockState{thenSt, elseSt})
	case *ast.ForStmt:
		if n.Init != nil {
			a.stmt(n.Init, st)
		}
		bodySt := st.clone()
		a.block(n.Body.List, bodySt)
		// A loop body may run zero times; keep the pre-loop state and only
		// propagate terminated loops that cannot be entered-and-exited.
		if n.Cond == nil && bodyAlwaysTerminates(n.Body) && !hasBreak(n.Body) {
			st.terminated = true
		}
	case *ast.RangeStmt:
		bodySt := st.clone()
		a.block(n.Body.List, bodySt)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		a.switchLike(n, st)
	case *ast.LabeledStmt:
		a.stmt(n.Stmt, st)
	case *ast.GoStmt:
		// Runs elsewhere; its FuncLit body is analyzed independently.
	case *ast.AssignStmt:
		// Lock calls very rarely appear in assignments (TryLock); scan for
		// calls anyway so `ok := mu.TryLock()` does not confuse the state —
		// TryLock is not tracked, plain Lock in an assignment is.
		for _, rhs := range n.Rhs {
			if call, ok := rhs.(*ast.CallExpr); ok {
				a.call(call, st)
			}
		}
	case *ast.BranchStmt:
		if n.Tok == token.BREAK || n.Tok == token.CONTINUE || n.Tok == token.GOTO {
			// Leaving the linear path: stop interpreting this branch rather
			// than misattribute later releases.
			st.terminated = true
		}
	}
}

func (a *lockFlow) switchLike(s ast.Stmt, st *lockState) {
	var bodies [][]ast.Stmt
	hasDefault := false
	collect := func(body *ast.BlockStmt) {
		for _, cl := range body.List {
			switch c := cl.(type) {
			case *ast.CaseClause:
				bodies = append(bodies, c.Body)
				if c.List == nil {
					hasDefault = true
				}
			case *ast.CommClause:
				bodies = append(bodies, c.Body)
				if c.Comm == nil {
					hasDefault = true
				}
			}
		}
	}
	switch n := s.(type) {
	case *ast.SwitchStmt:
		if n.Init != nil {
			a.stmt(n.Init, st)
		}
		collect(n.Body)
	case *ast.TypeSwitchStmt:
		if n.Init != nil {
			a.stmt(n.Init, st)
		}
		collect(n.Body)
	case *ast.SelectStmt:
		collect(n.Body)
		hasDefault = hasDefault || len(bodies) > 0 // select blocks until a case runs
	}
	states := make([]*lockState, 0, len(bodies)+1)
	for _, b := range bodies {
		cs := st.clone()
		a.block(b, cs)
		states = append(states, cs)
	}
	if !hasDefault || len(bodies) == 0 {
		states = append(states, st.clone()) // fall-through without matching
	}
	*st = *mergeStates(states)
}

func (a *lockFlow) call(call *ast.CallExpr, st *lockState) {
	op, ok := classifyLockCall(a.pkg, call)
	if !ok {
		return
	}
	if op.acquire {
		if prev, dup := st.held[op.instance]; dup && !prev.op.shared && !op.shared {
			a.diags = append(a.diags, Diagnostic{
				Pos:   a.u.Position(call.Pos()),
				Check: a.check,
				Message: fmt.Sprintf("%s.Lock() while already held since %s: self-deadlock",
					op.instance, a.u.Position(prev.pos)),
			})
		}
		// Order rule: acquiring op while holding a lock the graph says op
		// must precede.
		for _, h := range st.held {
			if h.op.typeKey == op.typeKey {
				continue
			}
			if declPos, bad := a.order.mustPrecede(op.typeKey, h.op.typeKey); bad {
				a.diags = append(a.diags, Diagnostic{
					Pos:   a.u.Position(call.Pos()),
					Check: a.check,
					Message: fmt.Sprintf("%s acquired while holding %s, violating //dpr:lockorder %s < %s (declared at %s)",
						op.typeKey, h.op.typeKey, op.typeKey, h.op.typeKey, a.u.Position(declPos)),
				})
			}
		}
		st.held[op.instance] = &heldLock{op: op, pos: call.Pos(), deferred: st.deferredRelease[op.instance]}
		return
	}
	delete(st.held, op.instance)
}

func (a *lockFlow) deferStmt(d *ast.DeferStmt, st *lockState) {
	markReleased := func(call *ast.CallExpr) {
		op, ok := classifyLockCall(a.pkg, call)
		if !ok || op.acquire {
			return
		}
		if h, held := st.held[op.instance]; held {
			h.deferred = true
		}
		st.deferredRelease[op.instance] = true
	}
	if fl, ok := d.Call.Fun.(*ast.FuncLit); ok {
		// defer func() { ... mu.Unlock() ... }()
		ast.Inspect(fl.Body, func(n ast.Node) bool {
			if c, ok := n.(*ast.CallExpr); ok {
				markReleased(c)
			}
			return true
		})
		return
	}
	markReleased(d.Call)
}

func bodyAlwaysTerminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

func hasBreak(b *ast.BlockStmt) bool {
	found := false
	ast.Inspect(b, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncLit, *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			return false // break would bind to the inner statement
		case *ast.BranchStmt:
			if n.(*ast.BranchStmt).Tok == token.BREAK {
				found = true
			}
		}
		return !found
	})
	return found
}

// ---- copy rule ----

// syncNoCopyTypes are the sync types whose values must not be copied.
func isNoCopySyncType(t types.Type) bool {
	n := namedType(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	switch n.Obj().Pkg().Path() {
	case "sync":
		switch n.Obj().Name() {
		case "Mutex", "RWMutex", "Once", "WaitGroup", "Cond", "Map", "Pool":
			return true
		}
	case "sync/atomic":
		return isTypedAtomic(t)
	}
	return false
}

// containsLock reports whether a value of type t embeds a no-copy sync
// value (not behind a pointer/slice/map/chan/interface indirection).
func containsLock(t types.Type) bool {
	return containsLockRec(t, make(map[types.Type]bool))
}

func containsLockRec(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if isNoCopySyncType(t) {
		return true
	}
	switch tt := types.Unalias(t).(type) {
	case *types.Named:
		return containsLockRec(tt.Underlying(), seen)
	case *types.Struct:
		for i := 0; i < tt.NumFields(); i++ {
			if containsLockRec(tt.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLockRec(tt.Elem(), seen)
	}
	return false
}

// checkCopyRuleSignature flags by-value lock-containing receivers, params
// and results.
func checkCopyRuleSignature(u *Unit, fs funcSpan) []Diagnostic {
	var diags []Diagnostic
	check := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			t := fs.pkg.Info.TypeOf(f.Type)
			if t == nil {
				continue
			}
			if _, isPtr := t.(*types.Pointer); isPtr {
				continue
			}
			if containsLock(t) {
				diags = append(diags, Diagnostic{
					Pos:   u.Position(f.Pos()),
					Check: "mutex-discipline",
					Message: fmt.Sprintf("%s of %s passes lock-containing type %s by value; use a pointer",
						what, fs.name, t),
				})
			}
		}
	}
	check(fs.decl.Recv, "receiver")
	if fs.decl.Type.Params != nil {
		check(fs.decl.Type.Params, "parameter")
	}
	if fs.decl.Type.Results != nil {
		check(fs.decl.Type.Results, "result")
	}
	return diags
}

// checkCopyRuleBodies flags assignments and call arguments that copy
// lock-containing values. Composite literals and call results are exempt
// (construction sites).
func checkCopyRuleBodies(u *Unit) []Diagnostic {
	var diags []Diagnostic
	copyish := func(p *Package, e ast.Expr) (types.Type, bool) {
		switch e.(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
		default:
			return nil, false
		}
		t := p.Info.TypeOf(e)
		if t == nil {
			return nil, false
		}
		if _, isPtr := t.(*types.Pointer); isPtr {
			return nil, false
		}
		if !containsLock(t) {
			return nil, false
		}
		return t, true
	}
	u.EachFile(func(p *Package, f *ast.File) {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				for _, rhs := range st.Rhs {
					if t, bad := copyish(p, rhs); bad {
						diags = append(diags, Diagnostic{
							Pos:     u.Position(rhs.Pos()),
							Check:   "mutex-discipline",
							Message: fmt.Sprintf("assignment copies lock-containing value of type %s", t),
						})
					}
				}
			case *ast.CallExpr:
				fnT := p.Info.TypeOf(st.Fun)
				sig, ok := fnT.(*types.Signature)
				if !ok {
					return true // conversion or builtin
				}
				_ = sig
				for _, arg := range st.Args {
					if t, bad := copyish(p, arg); bad {
						diags = append(diags, Diagnostic{
							Pos:     u.Position(arg.Pos()),
							Check:   "mutex-discipline",
							Message: fmt.Sprintf("call passes lock-containing value of type %s; pass a pointer", t),
						})
					}
				}
			}
			return true
		})
	})
	return diags
}
