package analysis

import (
	"os"
	"path/filepath"
	"testing"
)

// wireFuzzTargets maps each wire alias-decoder entry point to the fuzz
// target whose corpus must exercise it. A decode-bounds diagnostic anywhere
// in internal/wire means an unguarded access shipped without a seed that
// reproduces it, so the test demands the corpus entry before the fix or
// suppression lands.
var wireFuzzTargets = []string{
	"FuzzDecodeBatchRequest",
	"FuzzDecodeBatchReply",
	"FuzzDecodeError",
}

// TestRepoTreeClean runs the same analysis CI gates on via
// `go run ./cmd/dpr-vet ./...` over the enclosing module and fails on any
// diagnostic, keeping `go test` sufficient to catch a violation locally. It
// also pins the decode-bounds/fuzz pact: the wire decoder corpora must stay
// populated, and any decode-bounds finding demands a new seed.
func TestRepoTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks and compiles the whole module")
	}
	u, err := Load(LoadConfig{Dir: "."})
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	for _, d := range Run(u, DefaultCheckers()) {
		t.Errorf("%s", d.String())
		if d.Check == "decode-bounds" {
			t.Errorf("decode-bounds fired: add a truncated-frame seed under internal/wire/testdata/fuzz/ reproducing the unguarded access, then guard or justify it")
		}
	}
	for _, target := range wireFuzzTargets {
		dir := filepath.Join(u.ModuleDir, "internal", "wire", "testdata", "fuzz", target)
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Errorf("fuzz corpus %s: %v", dir, err)
			continue
		}
		if len(entries) == 0 {
			t.Errorf("fuzz corpus %s is empty", dir)
		}
	}
}
