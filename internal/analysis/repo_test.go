package analysis

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// wireFuzzTargets maps each wire alias-decoder entry point to the fuzz
// target whose corpus must exercise it. A decode-bounds diagnostic anywhere
// in internal/wire means an unguarded access shipped without a seed that
// reproduces it, so the test demands the corpus entry before the fix or
// suppression lands.
var wireFuzzTargets = []string{
	"FuzzDecodeBatchRequest",
	"FuzzDecodeBatchReply",
	"FuzzDecodeError",
}

// repoSuiteBudget bounds the full nine-checker run (load, type-check, call
// graph, summaries, all checkers) over the module. The suite gates CI on
// every push; if whole-program analysis cost creeps past this, the shared
// Unit caching has regressed (each checker rebuilding the call graph or the
// lock summaries instead of reusing them).
const repoSuiteBudget = 60 * time.Second

// TestRepoTreeClean runs the same analysis CI gates as
// `go run ./cmd/dpr-vet ./...` over the enclosing module — the full suite,
// whole-program checkers included — and fails on any diagnostic, keeping
// `go test` sufficient to catch a violation locally. It also pins the
// decode-bounds/fuzz pact (the wire decoder corpora must stay populated, and
// any decode-bounds finding demands a new seed) and the suite's runtime
// budget.
func TestRepoTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks and compiles the whole module")
	}
	start := time.Now()
	u, err := Load(LoadConfig{Dir: "."})
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags := Run(u, DefaultCheckers())
	if elapsed := time.Since(start); elapsed > repoSuiteBudget {
		t.Errorf("full suite took %v, over the %v budget: a checker is likely rebuilding a shared artifact instead of using the Unit cache", elapsed, repoSuiteBudget)
	}
	for _, d := range diags {
		t.Errorf("%s", d.String())
		if d.Check == "decode-bounds" {
			t.Errorf("decode-bounds fired: add a truncated-frame seed under internal/wire/testdata/fuzz/ reproducing the unguarded access, then guard or justify it")
		}
	}
	for _, target := range wireFuzzTargets {
		dir := filepath.Join(u.ModuleDir, "internal", "wire", "testdata", "fuzz", target)
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Errorf("fuzz corpus %s: %v", dir, err)
			continue
		}
		if len(entries) == 0 {
			t.Errorf("fuzz corpus %s is empty", dir)
		}
	}
}
