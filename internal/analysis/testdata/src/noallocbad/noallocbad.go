// Package noallocbad is the failing fixture for the hotpath-noalloc
// checker: annotated functions whose results force heap allocation.
package noallocbad

// Boxed allocates its result.
//
//dpr:noalloc
func Boxed() *int {
	return new(int) // want "heap escape in //dpr:noalloc function Boxed"
}

// AddrOut forces a stack variable to the heap by returning its address.
//
//dpr:noalloc
func AddrOut() *int {
	x := 0 // want "//dpr:noalloc function AddrOut"
	return &x
}
