// Package lockglobalok nests locks across function boundaries in ways the
// whole-program checker accepts: declared-order nestings, anonymous stripe
// locks with no module-wide identity, and go-spawned acquisitions that are
// not the spawner's synchronous behavior.
package lockglobalok

import "sync"

//dpr:lockorder lockglobalok.Outer.mu < lockglobalok.Inner.mu

// Outer is declared to come before Inner.
type Outer struct{ mu sync.Mutex }

// Inner is declared to come after Outer.
type Inner struct{ mu sync.Mutex }

// Pair holds both ordered locks.
type Pair struct {
	o Outer
	i Inner
}

func (p *Pair) lockInner() {
	p.i.mu.Lock()
	defer p.i.mu.Unlock()
}

// Ordered nests Inner under Outer across a call — exactly the declared
// order, so it is fine.
func (p *Pair) Ordered() {
	p.o.mu.Lock()
	defer p.o.mu.Unlock()
	p.lockInner()
}

// SpawnInner acquires Inner only inside a spawned goroutine: the acquisition
// does not run on SpawnInner's stack, so holding Outer here is not a
// nesting.
func (p *Pair) SpawnInner(done *sync.WaitGroup) {
	p.o.mu.Lock()
	defer p.o.mu.Unlock()
	done.Add(1)
	go func() {
		defer done.Done()
		p.i.mu.Lock()
		p.i.mu.Unlock()
	}()
}

// stripes are anonymous locks: instances have no module-wide identity, so
// nesting two of them (hand-over-hand) is not an orderable class.
func handOverHand(a, b *sync.Mutex) {
	a.Lock()
	defer a.Unlock()
	b.Lock()
	defer b.Unlock()
}

// Walk nests anonymous stripe locks through a helper.
func Walk(stripes []sync.Mutex) {
	for i := 0; i+1 < len(stripes); i++ {
		handOverHand(&stripes[i], &stripes[i+1])
	}
}
