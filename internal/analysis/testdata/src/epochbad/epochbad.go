// Package epochbad violates the epoch-protection discipline: slots left
// entered on early returns, and blocking operations performed while a slot
// is entered (which can deadlock the table's drain).
package epochbad

import (
	"errors"
	"sync"
	"time"

	"fixture/epoch"
)

// LeakOnError returns with the slot still entered on the failure path.
func LeakOnError(s *epoch.Slot, fail bool) error {
	s.Enter()
	if fail {
		return errors.New("boom") // want "epoch slot s entered at .* is still entered at this return"
	}
	s.Exit()
	return nil
}

// LoopEnter breaks out of the retry loop holding the slot and falls off the
// function end without an Exit.
func LoopEnter(s *epoch.Slot, ready func() bool) {
	for {
		s.Enter()
		if ready() {
			break
		}
		s.Exit()
	}
} // want "epoch slot s entered at .* is still entered at function end"

// RecvWhileEntered blocks on a channel receive inside the entered region.
func RecvWhileEntered(s *epoch.Slot, ch chan int) int {
	s.Enter()
	v := <-ch // want "channel receive while epoch slot s is entered"
	s.Exit()
	return v
}

// SendWhileEntered blocks on a channel send inside the entered region.
func SendWhileEntered(s *epoch.Slot, ch chan int) {
	s.Enter()
	ch <- 1 // want "channel send while epoch slot s is entered"
	s.Exit()
}

// SleepWhileEntered stalls the entered region (and therefore every drain).
func SleepWhileEntered(s *epoch.Slot) {
	s.Enter()
	time.Sleep(time.Millisecond) // want "time.Sleep while epoch slot s is entered"
	s.Exit()
}

// DrainWhileEntered self-deadlocks: the drain waits for this very slot.
func DrainWhileEntered(s *epoch.Slot, t *epoch.Table) {
	s.Enter()
	t.Drain() // want "epoch.Table.Drain .self-deadlock against the drain. while epoch slot s is entered"
	s.Exit()
}

func flush(t *epoch.Table) { t.Drain() }

// TransitiveDrain reaches the drain through a helper; only the whole-program
// call graph sees it.
func TransitiveDrain(s *epoch.Slot, t *epoch.Table) {
	s.Enter()
	flush(t) // want "call to epochbad.flush, which can reach epoch.Table.Drain"
	s.Exit()
}

// Store couples its state-machine lock to the drain: checkpoint holds mu
// across Table.Drain, so acquiring mu while entered closes the deadlock
// loop.
type Store struct {
	mu  sync.Mutex
	tbl *epoch.Table
}

func (st *Store) checkpoint() {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.tbl.Drain()
}

// Get takes the drain-coupled lock inside the entered region.
func (st *Store) Get(slot *epoch.Slot) {
	slot.Enter()
	st.mu.Lock() // want "epochbad.Store.mu acquired while epoch slot slot is entered"
	st.mu.Unlock()
	slot.Exit()
}
