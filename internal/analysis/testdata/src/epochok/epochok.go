// Package epochok follows the epoch-protection discipline: every Enter is
// paired with an Exit on all paths (explicitly or via defer), blocking work
// happens outside entered regions, and locks taken while entered are not
// coupled to any drain.
package epochok

import (
	"errors"
	"sync"
	"time"

	"fixture/epoch"
)

// Paired releases via defer, covering the early return.
func Paired(s *epoch.Slot, fail bool) error {
	s.Enter()
	defer s.Exit()
	if fail {
		return errors.New("boom")
	}
	return nil
}

// ExplicitPaths exits explicitly on every path.
func ExplicitPaths(s *epoch.Slot, fail bool) error {
	s.Enter()
	if fail {
		s.Exit()
		return errors.New("boom")
	}
	s.Exit()
	return nil
}

// RetryLoop is the guarded-admission shape done right: the slot is released
// before the backoff sleep and before leaving the function.
func RetryLoop(s *epoch.Slot, ready func() bool) {
	for {
		s.Enter()
		if ready() {
			break
		}
		s.Exit()
		time.Sleep(time.Microsecond)
	}
	s.Exit()
}

// DrainOutside drains only after the slot is released.
func DrainOutside(s *epoch.Slot, t *epoch.Table) {
	s.Enter()
	s.Exit()
	t.Drain()
}

// Counter's lock is never held across a drain, so taking it inside an
// entered region cannot deadlock the table.
type Counter struct {
	mu sync.Mutex
	n  int
}

// Bump takes the uncoupled lock while entered.
func (c *Counter) Bump(s *epoch.Slot) {
	s.Enter()
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	s.Exit()
}

// SelectWithDefault polls without blocking while entered.
func SelectWithDefault(s *epoch.Slot, ch chan int) int {
	s.Enter()
	defer s.Exit()
	select {
	case v := <-ch:
		return v
	default:
		return 0
	}
}
