// Package mutexok is the clean fixture for the mutex-discipline checker:
// pointer passing, releases on every path, and nesting that follows the
// declared lock order.
package mutexok

import "sync"

type Box struct {
	mu sync.Mutex
	n  int
}

// WithDefer releases through the dominating defer.
func WithDefer(b *Box) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.n
}

// Branchy unlocks explicitly before every return.
func Branchy(b *Box, fast bool) int {
	b.mu.Lock()
	if fast {
		n := b.n
		b.mu.Unlock()
		return n
	}
	b.mu.Unlock()
	return 0
}

// Pair's locks nest a-then-b, as declared.
//
//dpr:lockorder mutexok.Pair.a < mutexok.Pair.b
type Pair struct {
	a sync.Mutex
	b sync.Mutex
	n int
}

// Nested acquires in declared order.
func Nested(p *Pair) {
	p.a.Lock()
	p.b.Lock()
	p.n++
	p.b.Unlock()
	p.a.Unlock()
}
