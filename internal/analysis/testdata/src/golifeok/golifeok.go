// Package dredis (fixture golifeok) spawns goroutines the lifecycle checker
// accepts: joined WaitGroups, receives on channels an owner closes, context
// cancellation, and conn-reading loops whose owner's Close unblocks them.
package dredis

import (
	"context"
	"net"
	"sync"
)

// Proxy demonstrates WaitGroup joins and a closed done channel.
type Proxy struct {
	ln   net.Listener
	stop chan struct{}
	wg   sync.WaitGroup
}

// Start spawns the accept loop, joined via the WaitGroup.
func (p *Proxy) Start() {
	p.wg.Add(1)
	go p.acceptLoop()
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.wg.Add(1)
		go p.serve(conn)
	}
}

func (p *Proxy) serve(conn net.Conn) {
	defer p.wg.Done()
	buf := make([]byte, 64)
	for {
		if _, err := conn.Read(buf); err != nil {
			return
		}
		select {
		case <-p.stop:
			return
		default:
		}
	}
}

// StartWatcher spawns a goroutine parked on the done channel Stop closes.
func (p *Proxy) StartWatcher() {
	go func() {
		<-p.stop
	}()
}

// Stop closes the done channel and the listener, then joins everything.
func (p *Proxy) Stop() {
	close(p.stop)
	_ = p.ln.Close()
	p.wg.Wait()
}

// Client demonstrates owner-closed-conn evidence: the read loop has no
// WaitGroup and no channel, but Close unblocks its blocking Read.
type Client struct {
	conn net.Conn
}

// StartReader spawns the conn-bound read loop.
func (c *Client) StartReader() {
	go c.readLoop()
}

func (c *Client) readLoop() {
	buf := make([]byte, 64)
	for {
		if _, err := c.conn.Read(buf); err != nil {
			return
		}
	}
}

// Close tears down the conn, erroring the read loop out.
func (c *Client) Close() error {
	return c.conn.Close()
}

// Pump demonstrates context cancellation as a stop path.
type Pump struct{ n int }

// Run spawns a worker parked on ctx.Done().
func (p *Pump) Run(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
				p.n++
			}
		}
	}()
}
