// Package noallocok is the clean fixture for the hotpath-noalloc checker:
// an annotated function with no heap escapes.
package noallocok

// Sum is allocation-free: the slice is only read and the accumulator stays
// on the stack.
//
//dpr:noalloc
func Sum(xs []byte) int {
	n := 0
	for _, b := range xs {
		n += int(b)
	}
	return n
}
