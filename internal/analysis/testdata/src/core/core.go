// Package core is a miniature stand-in for the repo's internal/core. The
// cut-worldline checker matches its types by name within any package named
// "core", so the fixtures exercise the real matching logic without importing
// the enclosing module.
package core

// WorkerID identifies a worker in the fixture cluster.
type WorkerID uint64

// Version is a per-worker commit version.
type Version uint64

// WorldLine numbers the recovery timelines; versions restart across them.
type WorldLine uint64

// Cut maps workers to persisted version watermarks.
type Cut map[WorkerID]Version

// WorldLineTracker is the tag type carried by long-lived owners of cuts.
type WorldLineTracker struct {
	Current WorldLine
}
