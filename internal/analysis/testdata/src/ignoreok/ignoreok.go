// Package ignoreok is the clean fixture for //dpr:ignore: a justified
// standalone suppression silences the diagnostic on the next line.
package ignoreok

import "fixture/core"

// Suppressed carries a cut without a tag; the (world-line, cut) pairing is
// owned by the fixture harness, which is the justification recorded inline.
//
//dpr:ignore cut-worldline fixture: the pairing is owned by the enclosing harness
type Suppressed struct {
	Cut core.Cut
}
