// Package migok resolves every migration it begins: deferred aborts,
// transitive resolution through helpers, guard branches on the Begin error,
// and the named protocol forwarders themselves.
package migok

// Meta is a miniature migration metadata service; the checker matches the
// protocol calls by name.
type Meta struct{ pending map[uint64]bool }

// BeginMigrate installs a migration record.
func (m *Meta) BeginMigrate(parts []uint64, from, to uint64) (uint64, error) {
	m.pending[1] = true
	return 1, nil
}

// CompleteMigrate retires a record.
func (m *Meta) CompleteMigrate(id uint64) error {
	delete(m.pending, id)
	return nil
}

// AbortMigrate removes a record.
func (m *Meta) AbortMigrate(id uint64) (bool, error) {
	delete(m.pending, id)
	return false, nil
}

// DeferredAbort covers every exit with a deferred conditional abort.
func DeferredAbort(m *Meta, parts []uint64, ok bool) error {
	id, err := m.BeginMigrate(parts, 1, 2)
	if err != nil {
		return err
	}
	completed := false
	defer func() {
		if !completed {
			_, _ = m.AbortMigrate(id)
		}
	}()
	if !ok {
		return nil
	}
	completed = true
	return m.CompleteMigrate(id)
}

func abortAndWrap(m *Meta, id uint64, err error) error {
	_, _ = m.AbortMigrate(id)
	return err
}

// HelperAbort resolves through a helper the call graph sees into.
func HelperAbort(m *Meta, parts []uint64, ok bool) error {
	id, err := m.BeginMigrate(parts, 1, 2)
	if err != nil {
		return err
	}
	if !ok {
		return abortAndWrap(m, id, nil)
	}
	return m.CompleteMigrate(id)
}

// Service's BeginMigrate is a protocol forwarder: functions named after the
// protocol calls are the implementations, not clients, and are exempt.
type Service struct{ m Meta }

// BeginMigrate forwards to the store and returns the id to the remote
// caller, who owns the resolution.
func (s *Service) BeginMigrate(parts []uint64) (uint64, error) {
	id, err := s.m.BeginMigrate(parts, 1, 2)
	if err != nil {
		return 0, err
	}
	return id, nil
}
