// Package cutwlbad is the failing fixture for the cut-worldline checker:
// cuts travelling without the world-line they were observed on.
package cutwlbad

import "fixture/core"

type Untagged struct { // want "struct Untagged carries a core.Cut but no world-line tag"
	Cut core.Cut
}

func Returns() core.Cut { // want "Returns returns a core.Cut but no world-line appears in the signature"
	return core.Cut{}
}

func Takes(c core.Cut) { // want "Takes takes a core.Cut but no world-line appears in the signature"
	_ = c
}

type Source interface {
	Snapshot() core.Cut // want "interface method Source.Snapshot returns a core.Cut but no world-line appears in the signature"
}

// Migration boundaries are cut positions: a boundary-named core.Version
// moving without its world-line reproduces the same collision bug.

type Handover struct { // want "struct Handover carries a migration boundary \(core.Version field named \*boundary\*\) but no world-line tag"
	Boundary core.Version
}

func SealBoundary() core.Version { // want "SealBoundary returns a migration boundary \(core.Version\) but no world-line appears in the signature"
	return 0
}

func Pin(boundary core.Version) { // want "Pin takes a migration boundary \(core.Version\) but no world-line appears in the signature"
	_ = boundary
}

type Sealer interface {
	MigrationBoundary() core.Version // want "interface method Sealer.MigrationBoundary returns a migration boundary \(core.Version\) but no world-line appears in the signature"
}

// AppendCutPush mirrors a push-frame encoder that drops the world-line: the
// pushed cut would be foldable into a session on any world, reproducing the
// numeric-collision bug for idle sessions.
func AppendCutPush(dst []byte, c core.Cut) []byte { // want "AppendCutPush takes a core.Cut but no world-line appears in the signature"
	_ = c
	return dst
}
