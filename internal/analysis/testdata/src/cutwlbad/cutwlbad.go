// Package cutwlbad is the failing fixture for the cut-worldline checker:
// cuts travelling without the world-line they were observed on.
package cutwlbad

import "fixture/core"

type Untagged struct { // want "struct Untagged carries a core.Cut but no world-line tag"
	Cut core.Cut
}

func Returns() core.Cut { // want "Returns returns a core.Cut but no world-line appears in the signature"
	return core.Cut{}
}

func Takes(c core.Cut) { // want "Takes takes a core.Cut but no world-line appears in the signature"
	_ = c
}

type Source interface {
	Snapshot() core.Cut // want "interface method Source.Snapshot returns a core.Cut but no world-line appears in the signature"
}
