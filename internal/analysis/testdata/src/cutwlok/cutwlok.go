// Package cutwlok is the clean fixture for the cut-worldline checker: every
// scope that carries a cut also carries the world-line it was observed on.
package cutwlok

import "fixture/core"

// TaggedReply pairs the cut with its world-line.
type TaggedReply struct {
	Cut       core.Cut
	WorldLine core.WorldLine
}

// ByWorldLine is self-tagging: the key is the world-line.
type ByWorldLine map[core.WorldLine]core.Cut

// Observe returns a tagged pair.
func Observe() (core.Cut, core.WorldLine) {
	return core.Cut{}, 0
}

// Snapshotter owns a cut; its tracker field tags every method through the
// receiver scope.
type Snapshotter struct {
	wl  core.WorldLineTracker
	cut core.Cut
}

// Current is exempt through the receiver's tag.
func (s *Snapshotter) Current() core.Cut {
	return s.cut
}

// Source's method signature carries the pair explicitly.
type Source interface {
	CurrentCut() (core.Cut, core.WorldLine)
}
