// Package cutwlok is the clean fixture for the cut-worldline checker: every
// scope that carries a cut also carries the world-line it was observed on.
package cutwlok

import "fixture/core"

// TaggedReply pairs the cut with its world-line.
type TaggedReply struct {
	Cut       core.Cut
	WorldLine core.WorldLine
}

// ByWorldLine is self-tagging: the key is the world-line.
type ByWorldLine map[core.WorldLine]core.Cut

// Observe returns a tagged pair.
func Observe() (core.Cut, core.WorldLine) {
	return core.Cut{}, 0
}

// Snapshotter owns a cut; its tracker field tags every method through the
// receiver scope.
type Snapshotter struct {
	wl  core.WorldLineTracker
	cut core.Cut
}

// Current is exempt through the receiver's tag.
func (s *Snapshotter) Current() core.Cut {
	return s.cut
}

// Source's method signature carries the pair explicitly.
type Source interface {
	CurrentCut() (core.Cut, core.WorldLine)
}

// SealedHandover pairs the migration boundary with the world-line it was
// sealed on.
type SealedHandover struct {
	Boundary  core.Version
	WorldLine core.WorldLine
}

// SealBoundary returns the boundary together with its world-line.
func SealBoundary() (core.Version, core.WorldLine) {
	return 0, 0
}

// Migrator owns its boundary; the tracker field tags every method through
// the receiver scope.
type Migrator struct {
	wl       core.WorldLineTracker
	boundary core.Version
}

// Boundary is exempt through the receiver's tag.
func (m *Migrator) Boundary() core.Version {
	return m.boundary
}

// Bump shows that versions without boundary naming are not cut positions.
func Bump(v core.Version) core.Version {
	return v + 1
}

// PushedAdvance mirrors the decoded cut-advance push frame: the cut is
// tagged by the world-line field beside it.
type PushedAdvance struct {
	WorldLine core.WorldLine
	Cut       core.Cut
}

// AppendCutAdvance mirrors the push-frame encoder: the cut travels with the
// world-line in the same signature.
func AppendCutAdvance(dst []byte, wl core.WorldLine, c core.Cut) []byte {
	_ = wl
	_ = c
	return dst
}
