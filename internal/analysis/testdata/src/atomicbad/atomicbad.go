// Package atomicbad is the failing fixture for the atomic-discipline
// checker: one mixed plain/atomic field and two typed-wrapper misuses.
package atomicbad

import "sync/atomic"

type Counter struct {
	n    uint64
	hits atomic.Uint64
}

func (c *Counter) Inc() {
	atomic.AddUint64(&c.n, 1)
}

func (c *Counter) Read() uint64 {
	return c.n // want "plain access to field atomicbad.n, which is accessed with sync/atomic"
}

func (c *Counter) Reset() {
	c.hits = atomic.Uint64{} // want "assignment overwrites atomic field hits"
}

func (c *Counter) Snapshot() atomic.Uint64 { // want "result of .* passes lock-containing type"
	return c.hits // want "field hits .* copied by value; atomic wrappers must be used via their methods"
}
