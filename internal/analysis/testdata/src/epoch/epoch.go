// Package epoch is a miniature stand-in for the repo's internal/epoch. The
// epoch-discipline checker matches Slot and Table by name within any
// package whose import path ends in "epoch", so the fixtures exercise the
// real matching logic without importing the enclosing module.
package epoch

// Slot is one participant's epoch-protection handle.
type Slot struct{ active uint64 }

// Enter pins the current epoch.
func (s *Slot) Enter() { s.active++ }

// Exit releases the pin.
func (s *Slot) Exit() { s.active-- }

// Table owns the slots and can drain them.
type Table struct{ slots []Slot }

// Drain bumps the epoch and waits for every active slot to observe it.
func (t *Table) Drain() {
	for i := range t.slots {
		_ = t.slots[i].active
	}
}

// WaitObserved waits for every slot to observe the current epoch.
func (t *Table) WaitObserved() {
	for i := range t.slots {
		_ = t.slots[i].active
	}
}
