// Package ignorebad is the failing fixture for //dpr:ignore: directives
// without a check name or without a justification are themselves
// diagnostics, and a malformed directive suppresses nothing.
package ignorebad

import "fixture/core"

//dpr:ignore
func A() {}

//dpr:ignore cut-worldline
type Unjustified struct {
	Cut core.Cut
}
