// Package atomicok is the clean fixture for the atomic-discipline checker:
// every access to an atomic field goes through sync/atomic.
package atomicok

import "sync/atomic"

type Counter struct {
	n    uint64
	hits atomic.Uint64
}

func (c *Counter) Inc() {
	atomic.AddUint64(&c.n, 1)
}

func (c *Counter) Read() uint64 {
	return atomic.LoadUint64(&c.n)
}

func (c *Counter) Hit() {
	c.hits.Add(1)
}

func (c *Counter) Hits() uint64 {
	return c.hits.Load()
}

// NewCounter constructs with composite-literal keys, the one sanctioned
// plain "write" before the value is published.
func NewCounter() *Counter {
	return &Counter{n: 0}
}
