// Package boundsbad is the failing fixture for the decode-bounds checker:
// alias decoders slicing and indexing untrusted buffers with no prior
// bounds comparison.
package boundsbad

// DecodeFrameInto aliases p without ever checking its length.
func DecodeFrameInto(dst *uint64, p []byte) bool {
	_ = p[:8]           // want "subslice of p in alias decoder DecodeFrameInto"
	*dst = uint64(p[0]) // want "index of p in alias decoder DecodeFrameInto"
	return true
}

type rawDecoder struct {
	buf []byte
}

func (d *rawDecoder) next() byte {
	b := d.buf[0] // want "index of d.buf in alias decoder"
	return b
}

// DecodeAdvanceInto mirrors a pushed cut-advance decoder that trusts the
// frame and reads it unchecked.
func DecodeAdvanceInto(dst *uint64, p []byte) {
	*dst = uint64(p[8]) // want "index of p in alias decoder DecodeAdvanceInto"
	_ = p[9:]           // want "subslice of p in alias decoder DecodeAdvanceInto"
}

type advanceDecoder struct {
	buf []byte
}

func (d *advanceDecoder) worldLine() byte {
	return d.buf[7] // want "index of d.buf in alias decoder"
}
