// Package lockglobalbad exercises the whole-program lock-order checker:
// nestings that only exist across function boundaries, where the
// per-function mutex checker cannot see them.
package lockglobalbad

import "sync"

//dpr:lockorder lockglobalbad.Outer.mu < lockglobalbad.Inner.mu

// Outer is declared to come before Inner.
type Outer struct{ mu sync.Mutex }

// Inner is declared to come after Outer.
type Inner struct{ mu sync.Mutex }

// Pair holds both ordered locks.
type Pair struct {
	o Outer
	i Inner
}

func (p *Pair) lockOuter() {
	p.o.mu.Lock()
	defer p.o.mu.Unlock()
}

// Inverted holds Inner and calls a helper that acquires Outer: the declared
// order says Outer < Inner, so this is an interprocedural inversion.
func (p *Pair) Inverted() {
	p.i.mu.Lock()
	defer p.i.mu.Unlock()
	p.lockOuter() // want "acquires lockglobalbad.Outer.mu .* while holding lockglobalbad.Inner.mu, violating"
}

//dpr:lockorder lockglobalbad.A.mu < lockglobalbad.B.mu
//dpr:lockorder lockglobalbad.C.mu < lockglobalbad.B.mu

// A and C are both in the declared graph but unrelated to each other.
type A struct{ mu sync.Mutex }

// B orders after both A and C.
type B struct{ mu sync.Mutex }

// C is declared, but no order relates it to A.
type C struct{ mu sync.Mutex }

// Trio nests A over C without a declaration covering the pair.
type Trio struct {
	a A
	b B
	c C
}

func (t *Trio) lockC() {
	t.c.mu.Lock()
	defer t.c.mu.Unlock()
}

// Undeclared nests two declared-but-unrelated locks across a call.
func (t *Trio) Undeclared() {
	t.a.mu.Lock()
	defer t.a.mu.Unlock()
	t.lockC() // want "undeclared cross-function lock nesting: lockglobalbad.A.mu is held while the call to lockglobalbad.*lockC acquires lockglobalbad.C.mu"
}

// X and Y are not declared anywhere; nesting them both ways across calls is
// the classic ABBA deadlock candidate.
type X struct{ mu sync.Mutex }

// Y is the other half of the ABBA pair.
type Y struct{ mu sync.Mutex }

// XY holds the undeclared pair.
type XY struct {
	x X
	y Y
}

func (z *XY) lockY() {
	z.y.mu.Lock()
	defer z.y.mu.Unlock()
}

func (z *XY) lockX() {
	z.x.mu.Lock()
	defer z.x.mu.Unlock()
}

// AB acquires Y under X.
func (z *XY) AB() {
	z.x.mu.Lock()
	defer z.x.mu.Unlock()
	z.lockY() // want "lock-order cycle candidate"
}

// BA acquires X under Y.
func (z *XY) BA() {
	z.y.mu.Lock()
	defer z.y.mu.Unlock()
	z.lockX()
}
