// Package mutexbad is the failing fixture for the mutex-discipline checker:
// a leaked lock, a self-deadlock, an inverted acquisition order, and the
// three by-value copy shapes.
package mutexbad

import "sync"

type Box struct {
	mu sync.Mutex
	n  int
}

// Leak returns while still holding mu.
func Leak(b *Box) int {
	b.mu.Lock()
	return b.n // want "is still held at this return"
}

// Double acquires the same exclusive lock twice.
func Double(b *Box) {
	b.mu.Lock()
	b.mu.Lock() // want "self-deadlock"
	b.mu.Unlock()
	b.mu.Unlock()
}

// Pair's locks must nest a-then-b.
//
//dpr:lockorder mutexbad.Pair.a < mutexbad.Pair.b
type Pair struct {
	a sync.Mutex
	b sync.Mutex
	n int
}

// Inverted acquires against the declared order.
func Inverted(p *Pair) {
	p.b.Lock()
	p.a.Lock() // want "violating //dpr:lockorder mutexbad.Pair.a < mutexbad.Pair.b"
	p.n++
	p.a.Unlock()
	p.b.Unlock()
}

// ByValue copies the lock in through its parameter.
func ByValue(b Box) int { // want "parameter of ByValue passes lock-containing type"
	return b.n
}

// CopyOut copies the lock through a dereferencing assignment.
func CopyOut(b *Box) int {
	c := *b // want "assignment copies lock-containing value"
	return c.n
}

func use(v any) { _ = v }

// CallCopy copies the lock into a call argument.
func CallCopy(b *Box) {
	use(*b) // want "call passes lock-containing value"
}
