// Package metadata (fixture golifebad) spawns goroutines with no stop path:
// no joined WaitGroup, no closed done channel, and no owner Stop/Close that
// would unblock them. The goroutine-lifecycle checker scopes to the server
// package names, which is why this fixture declares one of them.
package metadata

import "net"

// Server owns a listener but has no Stop/Close, so nothing ever unblocks
// the accept loop.
type Server struct {
	ln net.Listener
}

// Start leaks an accept loop: the listener is never closed by any owner
// method and the loop joins nothing.
func (s *Server) Start() {
	go func() { // want "go statement has no stop path reachable from an owner Stop/Close"
		for {
			conn, err := s.ln.Accept()
			if err != nil {
				return
			}
			_ = conn
		}
	}()
}

func tick(counter *int) {
	for {
		*counter++
	}
}

// StartTicker leaks a free-running goroutine with no evidence of any kind.
func StartTicker(counter *int) {
	go tick(counter) // want "go statement has no stop path reachable from an owner Stop/Close"
}

// UnwaitedGroup calls Done on a WaitGroup nothing Waits on: joining a group
// nobody joins is not a stop path.
type UnwaitedGroup struct {
	n int
}

// Run spawns a worker whose only "evidence" is a channel nothing closes.
func (u *UnwaitedGroup) Run(ch chan int) {
	go func() { // want "go statement has no stop path reachable from an owner Stop/Close"
		for range ch {
			u.n++
		}
	}()
}
