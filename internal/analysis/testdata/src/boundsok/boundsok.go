// Package boundsok is the clean fixture for the decode-bounds checker:
// every subslice and index is preceded by a len/cap comparison on the same
// operand.
package boundsok

import "encoding/binary"

// DecodeFrameInto checks the buffer length before aliasing it.
func DecodeFrameInto(dst *uint64, p []byte) bool {
	if len(p) < 8 {
		return false
	}
	*dst = binary.LittleEndian.Uint64(p[:8])
	return true
}

type spanDecoder struct {
	buf []byte
	off int
}

func (d *spanDecoder) next() (byte, bool) {
	if d.off >= len(d.buf) {
		return 0, false
	}
	b := d.buf[d.off]
	d.off++
	return b, true
}

// DecodeAdvanceInto mirrors the pushed cut-advance frame decoder: the entry
// count is validated against the payload size before the entry loop reads,
// and every read is bounds-checked against the same operand.
func DecodeAdvanceInto(dst map[uint32]uint64, p []byte) bool {
	if len(p) < 12 {
		return false
	}
	n := int(binary.LittleEndian.Uint32(p[8:12]))
	if n > len(p) { // each entry needs 12 bytes
		return false
	}
	off := 12
	for i := 0; i < n; i++ {
		if off+12 > len(p) {
			return false
		}
		dst[binary.LittleEndian.Uint32(p[off:])] = binary.LittleEndian.Uint64(p[off+4:])
		off += 12
	}
	return off == len(p)
}
