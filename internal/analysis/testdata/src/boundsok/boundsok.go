// Package boundsok is the clean fixture for the decode-bounds checker:
// every subslice and index is preceded by a len/cap comparison on the same
// operand.
package boundsok

import "encoding/binary"

// DecodeFrameInto checks the buffer length before aliasing it.
func DecodeFrameInto(dst *uint64, p []byte) bool {
	if len(p) < 8 {
		return false
	}
	*dst = binary.LittleEndian.Uint64(p[:8])
	return true
}

type spanDecoder struct {
	buf []byte
	off int
}

func (d *spanDecoder) next() (byte, bool) {
	if d.off >= len(d.buf) {
		return 0, false
	}
	b := d.buf[d.off]
	d.off++
	return b, true
}
