// Package migbad leaves migrations unresolved: BeginMigrate calls with
// control-flow paths that return without a CompleteMigrate or AbortMigrate.
package migbad

import "errors"

// Meta is a miniature migration metadata service; the checker matches the
// protocol calls by name.
type Meta struct{ pending map[uint64]bool }

// BeginMigrate installs a migration record.
func (m *Meta) BeginMigrate(parts []uint64, from, to uint64) (uint64, error) {
	m.pending[1] = true
	return 1, nil
}

// CompleteMigrate retires a record.
func (m *Meta) CompleteMigrate(id uint64) error {
	delete(m.pending, id)
	return nil
}

// AbortMigrate removes a record.
func (m *Meta) AbortMigrate(id uint64) (bool, error) {
	delete(m.pending, id)
	return false, nil
}

// LeakOnValidate resolves the happy and Begin-failure paths but returns the
// validation failure with the record still pending.
func LeakOnValidate(m *Meta, parts []uint64, ok bool) error {
	id, err := m.BeginMigrate(parts, 1, 2)
	if err != nil {
		return err
	}
	if !ok {
		return errors.New("validation failed") // want "BeginMigrate at .* is not resolved on this path"
	}
	return m.CompleteMigrate(id)
}

func launder(err error) error { return err }

// ReassignedGuard overwrites the Begin error before branching on it, so the
// branch no longer proves the Begin failed.
func ReassignedGuard(m *Meta, parts []uint64) error {
	id, err := m.BeginMigrate(parts, 1, 2)
	err = launder(err)
	if err != nil {
		return err // want "BeginMigrate at .* is not resolved on this path"
	}
	return m.CompleteMigrate(id)
}

// AsyncAbort resolves only in a spawned goroutine: the function (and its
// caller's view of the protocol) completes before the abort runs.
func AsyncAbort(m *Meta, parts []uint64) {
	_, _ = m.BeginMigrate(parts, 1, 2)
	go func() {
		_, _ = m.AbortMigrate(1)
	}()
} // want "BeginMigrate at .* is not resolved on this path"
