package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// MigrationProtocolChecker enforces the migration protocol lifecycle: every
// BeginMigrate call must dominate a CompleteMigrate or AbortMigrate on all
// control-flow paths out of the function. A migration record left in the
// Preparing state wedges its shard forever — Ownership refuses to serve,
// and no future Begin can supersede it — so an early return between Begin
// and resolve is a real availability bug, not style.
//
// The analysis is name-based (BeginMigrate / CompleteMigrate /
// AbortMigrate) and flow-sensitive:
//
//   - a resolver counts if called directly, via a deferred call (including
//     a deferred function literal containing one), inside a return
//     expression, or through a declared callee that transitively reaches a
//     resolver over the call graph (so a helper like abortAndRestore
//     discharges the obligation);
//
//   - branches on the Begin call's error ("if err != nil { return err }")
//     clear the obligation on the failure arm: a failed Begin installed
//     nothing. The guard dies if the error variable is reassigned;
//
//   - functions themselves named BeginMigrate / CompleteMigrate /
//     AbortMigrate are exempt — they are the protocol implementations and
//     RPC forwarders, not clients;
//
//   - a resolver spawned with `go` does not count: the function can return
//     (and the caller can observe "migration started") before the
//     goroutine resolves anything.
//
// Paths merge by union: an obligation pending on any incoming path is
// pending after the merge.
type MigrationProtocolChecker struct{}

func (*MigrationProtocolChecker) Name() string { return "migration-protocol" }

const migBeginName = "BeginMigrate"

func isMigResolverName(name string) bool {
	return name == "CompleteMigrate" || name == "AbortMigrate"
}

func (c *MigrationProtocolChecker) Run(u *Unit) []Diagnostic {
	g := unitGraph(u)

	// Functions whose own body contains a call named Complete/AbortMigrate.
	// Syntactic on purpose: it covers interface calls the graph cannot
	// resolve to a declared body.
	resolvers := make(map[*types.Func]bool)
	for fn, fs := range g.spanOf {
		if bodyCallsResolver(fs.decl.Body) {
			resolvers[fn] = true
		}
	}
	resolverReach := func(fn *types.Func) bool {
		if resolvers[fn] {
			return true
		}
		for member := range g.closure(fn) {
			if resolvers[member] || isMigResolverName(member.Name()) {
				return true
			}
		}
		return false
	}

	var diags []Diagnostic
	funcs := declaredFuncs(u)
	for i := range funcs {
		fs := &funcs[i]
		if base := fs.decl.Name.Name; base == migBeginName || isMigResolverName(base) {
			continue // protocol implementations and forwarders
		}
		flow := &migFlow{u: u, pkg: fs.pkg, check: c.Name(), g: g, resolverReach: resolverReach}
		bodies := []*ast.BlockStmt{fs.decl.Body}
		for _, lit := range collectFuncLits(fs.decl.Body) {
			bodies = append(bodies, lit.lit.Body)
		}
		for _, body := range bodies {
			st := flow.block(body.List, &migState{})
			if !st.terminated {
				flow.checkExit(st, body.Rbrace)
			}
		}
		diags = append(diags, flow.diags...)
	}
	return diags
}

// migPending is one outstanding BeginMigrate obligation.
type migPending struct {
	pos    token.Pos
	errObj types.Object // error variable the Begin result was assigned to
}

type migState struct {
	pending       []migPending
	deferResolved bool // a deferred resolver is in force from here on
	terminated    bool
}

func (st *migState) clone() *migState {
	out := &migState{deferResolved: st.deferResolved, terminated: st.terminated}
	out.pending = append(out.pending, st.pending...)
	return out
}

// mergeMigStates joins two path states by union: pending anywhere is
// pending after, a deferred resolver must cover both arms to survive.
func mergeMigStates(a, b *migState) *migState {
	if a == nil || a.terminated {
		return b.clone()
	}
	if b == nil || b.terminated {
		return a.clone()
	}
	out := &migState{deferResolved: a.deferResolved && b.deferResolved}
	seen := make(map[token.Pos]bool)
	for _, p := range a.pending {
		seen[p.pos] = true
		out.pending = append(out.pending, p)
	}
	for _, p := range b.pending {
		if !seen[p.pos] {
			out.pending = append(out.pending, p)
		}
	}
	return out
}

type migFlow struct {
	u             *Unit
	pkg           *Package
	check         string
	g             *callGraph
	resolverReach func(*types.Func) bool
	diags         []Diagnostic
}

func (f *migFlow) block(stmts []ast.Stmt, st *migState) *migState {
	for _, s := range stmts {
		st = f.stmt(s, st)
		if st.terminated {
			break
		}
	}
	return st
}

func (f *migFlow) stmt(s ast.Stmt, st *migState) *migState {
	switch node := s.(type) {
	case *ast.ExprStmt:
		f.scanExpr(node.X, st)
	case *ast.AssignStmt:
		f.assign(node, st)
	case *ast.ReturnStmt:
		for _, r := range node.Results {
			f.scanExpr(r, st)
		}
		f.checkExit(st, node.Pos())
		st = st.clone()
		st.terminated = true
	case *ast.DeferStmt:
		if f.deferResolves(node.Call) {
			st = st.clone()
			st.deferResolved = true
		}
	case *ast.GoStmt:
		// Async resolution does not count; async Begins are their own
		// function literal's problem (analyzed independently).
	case *ast.IfStmt:
		st = f.ifStmt(node, st)
	case *ast.BlockStmt:
		st = f.block(node.List, st)
	case *ast.ForStmt:
		if node.Init != nil {
			st = f.stmt(node.Init, st)
		}
		if node.Cond != nil {
			f.scanExpr(node.Cond, st)
		}
		bodyOut := f.block(node.Body.List, st.clone())
		st = mergeMigStates(st, bodyOut)
	case *ast.RangeStmt:
		f.scanExpr(node.X, st)
		bodyOut := f.block(node.Body.List, st.clone())
		st = mergeMigStates(st, bodyOut)
	case *ast.SwitchStmt:
		if node.Init != nil {
			st = f.stmt(node.Init, st)
		}
		if node.Tag != nil {
			f.scanExpr(node.Tag, st)
		}
		st = f.clauses(node.Body, st, !switchHasDefault(node.Body))
	case *ast.TypeSwitchStmt:
		if node.Init != nil {
			st = f.stmt(node.Init, st)
		}
		st = f.clauses(node.Body, st, !switchHasDefault(node.Body))
	case *ast.SelectStmt:
		st = f.clauses(node.Body, st, false)
	case *ast.LabeledStmt:
		st = f.stmt(node.Stmt, st)
	case *ast.BranchStmt, *ast.EmptyStmt, *ast.IncDecStmt, *ast.DeclStmt, *ast.SendStmt:
		f.scanNode(s, st)
	default:
		f.scanNode(s, st)
	}
	return st
}

// clauses runs each case body from a clone of the incoming state and
// unions the results; withFallthroughPath adds the no-case-matched path.
func (f *migFlow) clauses(body *ast.BlockStmt, st *migState, noMatchPath bool) *migState {
	var out *migState
	if noMatchPath {
		out = st.clone()
	}
	for _, cl := range body.List {
		var stmts []ast.Stmt
		switch cc := cl.(type) {
		case *ast.CaseClause:
			for _, e := range cc.List {
				f.scanExpr(e, st)
			}
			stmts = cc.Body
		case *ast.CommClause:
			branch := st.clone()
			if cc.Comm != nil {
				branch = f.stmt(cc.Comm, branch)
			}
			out = mergeMigStates(out, f.block(cc.Body, branch))
			continue
		}
		out = mergeMigStates(out, f.block(stmts, st.clone()))
	}
	if out == nil {
		return st
	}
	return out
}

func switchHasDefault(body *ast.BlockStmt) bool {
	for _, cl := range body.List {
		if cc, ok := cl.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

// assign handles `err := x.BeginMigrate(...)` specially so the obligation
// carries the error variable for later guard branches, and invalidates
// guards whose variable is overwritten.
func (f *migFlow) assign(node *ast.AssignStmt, st *migState) {
	var beginCall *ast.CallExpr
	if len(node.Rhs) == 1 {
		if call, ok := ast.Unparen(node.Rhs[0]).(*ast.CallExpr); ok && calledNameIs(call, migBeginName) {
			beginCall = call
			for _, a := range call.Args {
				f.scanExpr(a, st)
			}
		}
	}
	if beginCall == nil {
		for _, r := range node.Rhs {
			f.scanExpr(r, st)
		}
	}
	// Reassigning a guard variable kills the guard.
	for _, l := range node.Lhs {
		if obj := referencedObject(f.pkg, l); obj != nil {
			for i := range st.pending {
				if st.pending[i].errObj == obj {
					st.pending[i].errObj = nil
				}
			}
		}
	}
	if beginCall != nil {
		p := migPending{pos: beginCall.Pos()}
		// The last error-typed LHS holds the Begin result's error.
		for _, l := range node.Lhs {
			if t := f.pkg.Info.TypeOf(l); t != nil && isErrorType(t) {
				p.errObj = referencedObject(f.pkg, l)
			}
		}
		st.pending = append(st.pending, p)
	}
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// ifStmt splits on error guards tied to a pending Begin: on the arm where
// the Begin's error is non-nil the Begin failed and installed nothing, so
// the obligation is dropped there.
func (f *migFlow) ifStmt(node *ast.IfStmt, st *migState) *migState {
	if node.Init != nil {
		st = f.stmt(node.Init, st)
	}
	f.scanExpr(node.Cond, st)
	thenSt := st.clone()
	elseSt := st.clone()
	if obj, eqNil, ok := f.nilGuard(node.Cond); ok && obj != nil {
		failSt := thenSt // `err != nil` arm
		if eqNil {
			failSt = elseSt // `err == nil`: failure is the else arm
		}
		kept := failSt.pending[:0]
		for _, p := range failSt.pending {
			if p.errObj != obj {
				kept = append(kept, p)
			}
		}
		failSt.pending = kept
	}
	thenOut := f.block(node.Body.List, thenSt)
	elseOut := elseSt
	if node.Else != nil {
		elseOut = f.stmt(node.Else, elseSt)
	}
	return mergeMigStates(thenOut, elseOut)
}

// nilGuard recognizes `x == nil` / `x != nil` and resolves x's object.
func (f *migFlow) nilGuard(cond ast.Expr) (types.Object, bool, bool) {
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
		return nil, false, false
	}
	x, y := ast.Unparen(bin.X), ast.Unparen(bin.Y)
	if isNilIdent(y) {
		return referencedObject(f.pkg, x), bin.Op == token.EQL, true
	}
	if isNilIdent(x) {
		return referencedObject(f.pkg, y), bin.Op == token.EQL, true
	}
	return nil, false, false
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// scanExpr applies Begin/resolver effects of every call inside e, skipping
// function literals (analyzed on their own) and go statements.
func (f *migFlow) scanExpr(e ast.Expr, st *migState) {
	if e == nil {
		return
	}
	f.scanNode(e, st)
}

func (f *migFlow) scanNode(n ast.Node, st *migState) {
	ast.Inspect(n, func(c ast.Node) bool {
		switch cn := c.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			_ = cn
			return false
		case *ast.CallExpr:
			if f.callResolves(cn) {
				st.pending = nil
			} else if calledNameIs(cn, migBeginName) {
				st.pending = append(st.pending, migPending{pos: cn.Pos()})
			}
		}
		return true
	})
}

// callResolves reports whether a call discharges the obligation: named
// resolver, or a declared callee that transitively reaches one.
func (f *migFlow) callResolves(call *ast.CallExpr) bool {
	if name, ok := calledName(call); ok && isMigResolverName(name) {
		return true
	}
	for _, callee := range f.g.siteCallees[call] {
		if f.resolverReach(callee) {
			return true
		}
	}
	return false
}

// deferResolves reports whether a deferred call (or deferred literal body)
// contains a resolver.
func (f *migFlow) deferResolves(call *ast.CallExpr) bool {
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		return bodyCallsResolver(lit.Body) || f.litReachesResolver(lit)
	}
	return f.callResolves(call)
}

func (f *migFlow) litReachesResolver(lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && f.callResolves(call) {
			found = true
			return false
		}
		return true
	})
	return found
}

// bodyCallsResolver is the syntactic seed: a call named CompleteMigrate or
// AbortMigrate anywhere in the body (including through interfaces the call
// graph cannot resolve).
func bodyCallsResolver(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if name, ok := calledName(call); ok && isMigResolverName(name) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func calledName(call *ast.CallExpr) (string, bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name, true
	case *ast.SelectorExpr:
		return fun.Sel.Name, true
	}
	return "", false
}

func calledNameIs(call *ast.CallExpr, name string) bool {
	n, ok := calledName(call)
	return ok && n == name
}

// checkExit reports every still-pending Begin at a function exit.
func (f *migFlow) checkExit(st *migState, at token.Pos) {
	if st.deferResolved {
		return
	}
	for _, p := range st.pending {
		f.diags = append(f.diags, Diagnostic{
			Pos:   f.u.Position(at),
			Check: f.check,
			Message: fmt.Sprintf("BeginMigrate at %s is not resolved on this path: no CompleteMigrate or AbortMigrate (direct, transitive, or deferred) before this return — an unresolved migration record wedges the shard", f.u.Position(p.pos)),
		})
	}
}
