package analysis

import (
	"go/ast"
	"go/types"
)

// callGraph is the unit-wide static call graph that turns the per-function
// checkers into a whole-program pass. Nodes are the declared functions of
// the module (FuncDecls with bodies); edges are call sites resolved through
// go/types:
//
//   - direct calls to package functions and concrete methods resolve to the
//     single declared callee;
//   - calls through an interface method resolve to the method on every
//     concrete named type in the unit that implements the interface (the
//     unit is the whole module, so this is the complete in-module dispatch
//     set — stdlib implementations are invisible and conservatively absent);
//   - calls through function values (fields, parameters, locals) stay
//     unresolved: propagation simply stops there.
//
// A `go` statement is not a synchronous edge — the spawned work does not run
// on the caller's stack, so held locks and entered epoch slots do not flow
// into it. Go statements are recorded separately as the goroutine-lifecycle
// checker's roots. Deferred calls are synchronous (they run before the
// caller returns) and function-literal bodies that are not go-spawned are
// attributed to their enclosing declaration.
type callGraph struct {
	u      *Unit
	spanOf map[*types.Func]*funcSpan   // declared funcs with bodies
	out    map[*types.Func][]*types.Func // deduped synchronous edges
	// siteCallees resolves every call expression in the unit (including
	// those inside go-spawned literals) to its declared in-unit targets.
	siteCallees map[*ast.CallExpr][]*types.Func
	goSites     []goSite
	named       []*types.Named            // concrete named types in the unit
	implCache   map[*types.Func][]*types.Func
	closures    map[*types.Func]map[*types.Func]bool
}

// goSite is one `go` statement, with the declaration it appears in.
type goSite struct {
	fs   *funcSpan
	stmt *ast.GoStmt
}

// unitGraph builds (once) and returns the unit's call graph.
func unitGraph(u *Unit) *callGraph {
	if u.cache.graph != nil {
		return u.cache.graph
	}
	g := &callGraph{
		u:           u,
		spanOf:      make(map[*types.Func]*funcSpan),
		out:         make(map[*types.Func][]*types.Func),
		siteCallees: make(map[*ast.CallExpr][]*types.Func),
		implCache:   make(map[*types.Func][]*types.Func),
		closures:    make(map[*types.Func]map[*types.Func]bool),
	}
	funcs := declaredFuncs(u)
	for i := range funcs {
		fs := &funcs[i]
		if fn, ok := fs.pkg.Info.Defs[fs.decl.Name].(*types.Func); ok {
			g.spanOf[fn] = fs
		}
	}
	for _, p := range u.Packages {
		scope := p.Pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			n, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if _, isIface := n.Underlying().(*types.Interface); isIface {
				continue
			}
			g.named = append(g.named, n)
		}
	}
	for i := range funcs {
		fs := &funcs[i]
		fn, ok := fs.pkg.Info.Defs[fs.decl.Name].(*types.Func)
		if !ok {
			continue
		}
		g.walkBody(fs, fn, fs.decl.Body, false)
	}
	u.cache.graph = g
	return g
}

// walkBody collects call edges and go sites from one body. async marks a
// go-spawned subtree: its calls are resolved into siteCallees (the
// goroutine checker follows them) but do not become synchronous edges of
// the enclosing declaration.
func (g *callGraph) walkBody(fs *funcSpan, from *types.Func, body ast.Node, async bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.GoStmt:
			g.goSites = append(g.goSites, goSite{fs: fs, stmt: node})
			g.walkBody(fs, from, node.Call, true)
			return false
		case *ast.CallExpr:
			targets := g.resolveCall(fs.pkg, node)
			if len(targets) > 0 {
				g.siteCallees[node] = targets
				if !async {
					g.addEdges(from, targets)
				}
			}
		}
		return true
	})
}

func (g *callGraph) addEdges(from *types.Func, to []*types.Func) {
	existing := g.out[from]
	for _, t := range to {
		dup := false
		for _, e := range existing {
			if e == t {
				dup = true
				break
			}
		}
		if !dup {
			existing = append(existing, t)
		}
	}
	g.out[from] = existing
}

// resolveCall maps a call expression to declared in-unit targets.
func (g *callGraph) resolveCall(p *Package, call *ast.CallExpr) []*types.Func {
	var fn *types.Func
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ = p.Info.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		fn, _ = p.Info.Uses[fun.Sel].(*types.Func)
	}
	if fn == nil {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if iface, ok := sig.Recv().Type().Underlying().(*types.Interface); ok {
			return g.implementations(fn, iface)
		}
	}
	if _, ok := g.spanOf[fn]; ok {
		return []*types.Func{fn}
	}
	return nil
}

// implementations resolves an interface method to the same-named method on
// every concrete in-unit type implementing the interface.
func (g *callGraph) implementations(ifaceMethod *types.Func, iface *types.Interface) []*types.Func {
	if impls, ok := g.implCache[ifaceMethod]; ok {
		return impls
	}
	var impls []*types.Func
	for _, n := range g.named {
		ptr := types.NewPointer(n)
		if !types.Implements(n, iface) && !types.Implements(ptr, iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(ptr, true, n.Obj().Pkg(), ifaceMethod.Name())
		m, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		if _, declared := g.spanOf[m]; declared {
			impls = append(impls, m)
		}
	}
	g.implCache[ifaceMethod] = impls
	return impls
}

// closure returns every function reachable from fn over synchronous call
// edges, fn included. One plain DFS per queried source, cached.
func (g *callGraph) closure(fn *types.Func) map[*types.Func]bool {
	if c, ok := g.closures[fn]; ok {
		return c
	}
	c := map[*types.Func]bool{fn: true}
	stack := []*types.Func{fn}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, next := range g.out[cur] {
			if !c[next] {
				c[next] = true
				stack = append(stack, next)
			}
		}
	}
	g.closures[fn] = c
	return c
}

// reaches reports whether target is reachable from fn over synchronous call
// edges (fn == target counts).
func (g *callGraph) reaches(fn, target *types.Func) bool {
	return g.closure(fn)[target]
}

// reachesAny reports the first of targets reachable from fn.
func (g *callGraph) reachesAny(fn *types.Func, targets map[*types.Func]bool) (*types.Func, bool) {
	c := g.closure(fn)
	for t := range targets {
		if c[t] {
			return t, true
		}
	}
	return nil, false
}
