package analysis

import (
	"fmt"
	"go/token"
	"go/types"
	"sort"
)

// LockOrderGlobalChecker is the whole-program half of the lock-order
// discipline. The mutex checker validates acquisitions against the declared
// //dpr:lockorder graph within a single function; this checker propagates
// held-lock sets across the call graph (including interface dispatch, so a
// worker's rollback lock held across a StateObject.Restore reaches the
// store locks of every implementation) and reports:
//
//  1. interprocedural order violations — a call made with lock H held
//     transitively acquires lock A where the declared order says A < H;
//
//  2. undeclared nestings between declared locks — H held while a callee
//     acquires A, both locks appear in the //dpr:lockorder graph, but no
//     declared relation covers the pair. Either direction of such a nesting
//     can land first; declaring the intended order makes the inverse a
//     violation everywhere;
//
//  3. cycle candidates — lock classes A and B observed nested both ways
//     anywhere in the module (at least one of the two edges crossing a
//     function boundary), the classic lockdep ABBA shape.
//
// Only keyed locks (owner-qualified: "pkg.Type.field" or a package-level
// mutex) participate: anonymous locals such as index stripe locks have no
// module-wide identity, and cross-instance nesting of one lock class (hand-
// over-hand, two-account transfers) is instance-dependent, so self-edges
// are ignored.
type LockOrderGlobalChecker struct{}

func (*LockOrderGlobalChecker) Name() string { return "lock-order-global" }

// acquireRef is one lock class a function (transitively) acquires.
type acquireRef struct {
	typeKey string
	pos     token.Pos
}

// nestEdge records one witnessed "from held while to acquired" nesting.
type nestEdge struct {
	pos       token.Pos // witness: the acquisition or the propagating call
	interproc bool
	heldPos   token.Pos // where the held lock was acquired
	acqPos    token.Pos // where the nested lock is acquired (callee side)
	callee    string    // display name of the callee for interproc edges
}

func (c *LockOrderGlobalChecker) Run(u *Unit) []Diagnostic {
	order, _ := parseLockOrder(u) // malformed directives are the mutex checker's diagnostics
	g := unitGraph(u)
	ls := unitLockSummaries(u)

	declared := make(map[string]bool)
	for a, bs := range order.before {
		declared[a] = true
		for b := range bs {
			declared[b] = true
		}
	}

	transMemo := make(map[*types.Func][]acquireRef)
	transAcquires := func(fn *types.Func) []acquireRef {
		if refs, ok := transMemo[fn]; ok {
			return refs
		}
		seen := make(map[string]bool)
		var refs []acquireRef
		for member := range g.closure(fn) {
			sum, ok := ls.byFunc[member]
			if !ok {
				continue
			}
			for _, acq := range sum.acquires {
				if acq.op.keyed && !seen[acq.op.typeKey] {
					seen[acq.op.typeKey] = true
					refs = append(refs, acquireRef{typeKey: acq.op.typeKey, pos: acq.pos})
				}
			}
		}
		sort.Slice(refs, func(i, j int) bool { return refs[i].typeKey < refs[j].typeKey })
		transMemo[fn] = refs
		return refs
	}

	type edgeKey struct{ from, to string }
	edges := make(map[edgeKey]nestEdge)
	addEdge := func(k edgeKey, e nestEdge) {
		if prev, ok := edges[k]; ok {
			// Keep the first witness; upgrade to an interprocedural one.
			if !prev.interproc && e.interproc {
				edges[k] = e
			}
			return
		}
		edges[k] = e
	}

	var diags []Diagnostic
	reportedUndeclared := make(map[edgeKey]bool)

	// Intra-function direct nestings feed the cycle graph only: the mutex
	// checker already validates them against the declared order.
	for _, sum := range ls.all {
		for _, acq := range sum.acquires {
			if !acq.op.keyed {
				continue
			}
			for _, h := range acq.held {
				if h.keyed && h.typeKey != acq.op.typeKey {
					addEdge(edgeKey{h.typeKey, acq.op.typeKey},
						nestEdge{pos: acq.pos, heldPos: h.pos, acqPos: acq.pos})
				}
			}
		}
	}

	// Interprocedural propagation: held sets flow into resolved callees.
	for _, sum := range ls.all {
		for _, ch := range sum.calls {
			seenPair := make(map[edgeKey]bool)
			for _, callee := range g.siteCallees[ch.call] {
				calleeName := calleeName(g, callee)
				for _, acq := range transAcquires(callee) {
					for _, h := range ch.held {
						if !h.keyed || h.typeKey == acq.typeKey {
							continue
						}
						k := edgeKey{h.typeKey, acq.typeKey}
						if seenPair[k] {
							continue
						}
						seenPair[k] = true
						addEdge(k, nestEdge{pos: ch.pos, interproc: true,
							heldPos: h.pos, acqPos: acq.pos, callee: calleeName})
						if declPos, bad := order.mustPrecede(acq.typeKey, h.typeKey); bad {
							diags = append(diags, Diagnostic{
								Pos:   u.Position(ch.pos),
								Check: c.Name(),
								Message: fmt.Sprintf("call to %s acquires %s (at %s) while holding %s, violating //dpr:lockorder %s < %s (declared at %s)",
									calleeName, acq.typeKey, u.Position(acq.pos), h.typeKey,
									acq.typeKey, h.typeKey, u.Position(declPos)),
							})
							continue
						}
						if _, ok := order.mustPrecede(h.typeKey, acq.typeKey); ok {
							continue // nesting matches the declared order
						}
						if declared[h.typeKey] && declared[acq.typeKey] && !reportedUndeclared[k] {
							reportedUndeclared[k] = true
							diags = append(diags, Diagnostic{
								Pos:   u.Position(ch.pos),
								Check: c.Name(),
								Message: fmt.Sprintf("undeclared cross-function lock nesting: %s is held while the call to %s acquires %s (at %s); both locks are in the //dpr:lockorder graph but no order relates them — declare //dpr:lockorder %s < %s if this nesting is intended",
									h.typeKey, calleeName, acq.typeKey, u.Position(acq.pos),
									h.typeKey, acq.typeKey),
							})
						}
					}
				}
			}
		}
	}

	// Cycle candidates: both directions observed, at least one crossing a
	// function boundary, and not already covered by a declared order (those
	// surface as violations above or in the mutex checker).
	var keys []edgeKey
	for k := range edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].from != keys[j].from {
			return keys[i].from < keys[j].from
		}
		return keys[i].to < keys[j].to
	})
	for _, k := range keys {
		if k.from >= k.to {
			continue // report each unordered pair once
		}
		fwd := edges[k]
		rev, ok := edges[edgeKey{k.to, k.from}]
		if !ok || (!fwd.interproc && !rev.interproc) {
			continue
		}
		if _, d1 := order.mustPrecede(k.from, k.to); d1 {
			continue
		}
		if _, d2 := order.mustPrecede(k.to, k.from); d2 {
			continue
		}
		at := fwd
		if !at.interproc {
			at = rev
		}
		diags = append(diags, Diagnostic{
			Pos:   u.Position(at.pos),
			Check: c.Name(),
			Message: fmt.Sprintf("lock-order cycle candidate: %s is acquired while %s is held (%s) and %s is acquired while %s is held (%s); declare a //dpr:lockorder to fix one order",
				k.to, k.from, u.Position(fwd.pos), k.from, k.to, u.Position(rev.pos)),
		})
	}
	return diags
}
