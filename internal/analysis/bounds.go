package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DecodeBoundsChecker guards the alias decoders: every Decode*Into function
// (and every method of a type whose name contains "decoder") must perform a
// length/capacity comparison against a buffer before slicing or indexing
// it. The decoders alias untrusted wire payloads — a subslice without a
// dominating bounds comparison is either a panic on a truncated frame or,
// worse, silent acceptance of a corrupt one (the PR 1 decode-allocation-bomb
// bug class).
//
// The analysis is syntactic within a function: a byte-slice operand may be
// sliced/indexed at position P only if some comparison mentioning len(X) or
// cap(X) for the same operand X appears earlier in the function. That is the
// shape every legitimate decoder in the repo already has (the check, then
// the slice).
type DecodeBoundsChecker struct{}

func (*DecodeBoundsChecker) Name() string { return "decode-bounds" }

func (c *DecodeBoundsChecker) Run(u *Unit) []Diagnostic {
	var diags []Diagnostic
	for _, fs := range declaredFuncs(u) {
		if !c.inScope(fs) {
			continue
		}
		diags = append(diags, c.checkFunc(u, fs)...)
	}
	return diags
}

// inScope selects alias-decoder functions: Decode*Into by name, plus all
// methods of decoder-named types.
func (c *DecodeBoundsChecker) inScope(fs funcSpan) bool {
	name := fs.decl.Name.Name
	if strings.HasPrefix(name, "Decode") && strings.HasSuffix(name, "Into") {
		return true
	}
	if fs.decl.Recv != nil && len(fs.decl.Recv.List) == 1 {
		rt := exprString(fs.decl.Recv.List[0].Type)
		rt = strings.TrimPrefix(rt, "*")
		if strings.Contains(strings.ToLower(rt), "decoder") {
			return true
		}
	}
	return false
}

func (c *DecodeBoundsChecker) checkFunc(u *Unit, fs funcSpan) []Diagnostic {
	info := fs.pkg.Info
	// Gather bounds comparisons: positions of len(X)/cap(X) inside a
	// comparison, keyed by the rendered operand X.
	guardPos := map[string][]token.Pos{}
	ast.Inspect(fs.decl.Body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
		default:
			return true
		}
		for _, side := range []ast.Expr{be.X, be.Y} {
			ast.Inspect(side, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok || len(call.Args) != 1 {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || (id.Name != "len" && id.Name != "cap") {
					return true
				}
				if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
					return true
				}
				key := exprString(call.Args[0])
				guardPos[key] = append(guardPos[key], be.Pos())
				return true
			})
		}
		return true
	})
	guardedBefore := func(key string, pos token.Pos) bool {
		for _, g := range guardPos[key] {
			if g < pos {
				return true
			}
		}
		return false
	}
	var diags []Diagnostic
	ast.Inspect(fs.decl.Body, func(n ast.Node) bool {
		var target ast.Expr
		var what string
		switch e := n.(type) {
		case *ast.SliceExpr:
			target, what = e.X, "subslice"
		case *ast.IndexExpr:
			target, what = e.X, "index"
		default:
			return true
		}
		if !isByteSlice(info.TypeOf(target)) {
			return true
		}
		key := exprString(target)
		if guardedBefore(key, n.Pos()) {
			return true
		}
		diags = append(diags, Diagnostic{
			Pos:   u.Position(n.Pos()),
			Check: c.Name(),
			Message: fmt.Sprintf("%s of %s in alias decoder %s without a prior len/cap bounds comparison on %s",
				what, key, fs.name, key),
		})
		return true
	})
	return diags
}

func isByteSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := types.Unalias(t).Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint8
}
