package analysis

import (
	"bytes"
	"fmt"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// NoAllocChecker enforces //dpr:noalloc: functions whose doc comment carries
// the directive are the pinned allocation-free hot paths (serve, encode,
// decode). The checker compiles the packages containing annotations with
//
//	go build -gcflags=-m=2
//
// and fails on every escape-analysis finding ("escapes to heap" / "moved to
// heap") inside an annotated function's body. Unlike the runtime
// testing.AllocsPerRun guards, this catches a new heap escape at compile
// time, names the offending line, and does not depend on which branch a
// benchmark happens to execute. Deliberate cold-path allocations (error
// construction, buffer growth to the high-water mark) are suppressed inline
// with //dpr:ignore and a justification.
//
// The go command replays cached compiler diagnostics, so repeated runs cost
// a cache probe, not a rebuild.
type NoAllocChecker struct{}

func (*NoAllocChecker) Name() string { return "hotpath-noalloc" }

const noAllocDirective = "dpr:noalloc"

// escapeLine matches "path:line:col: message" compiler diagnostics.
var escapeLine = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*)$`)

func (c *NoAllocChecker) Run(u *Unit) []Diagnostic {
	spans, pkgDirs := c.annotatedFuncs(u)
	if len(spans) == 0 {
		return nil
	}
	out, err := runEscapeAnalysis(u.ModuleDir, pkgDirs)
	if err != nil {
		return []Diagnostic{{
			Pos:     u.Position(spans[0].decl.Pos()),
			Check:   c.Name(),
			Message: "escape analysis failed: " + err.Error(),
		}}
	}
	return c.matchEscapes(u, spans, out)
}

// annotatedFuncs collects //dpr:noalloc functions and the package dirs that
// must be compiled.
func (c *NoAllocChecker) annotatedFuncs(u *Unit) ([]funcSpan, []string) {
	var spans []funcSpan
	dirSet := map[string]bool{}
	for _, fs := range declaredFuncs(u) {
		if fs.decl.Doc == nil {
			continue
		}
		annotated := false
		for _, cm := range fs.decl.Doc.List {
			if strings.HasPrefix(cm.Text, "//"+noAllocDirective) {
				annotated = true
				break
			}
		}
		if !annotated {
			continue
		}
		spans = append(spans, fs)
		dirSet[fs.pkg.Dir] = true
	}
	dirs := make([]string, 0, len(dirSet))
	for d := range dirSet {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	return spans, dirs
}

// runEscapeAnalysis compiles the given package dirs with -gcflags=-m=2 from
// the module root and returns the compiler's diagnostic output. -gcflags
// without a pattern applies only to the packages named on the command line,
// so dependencies compile quietly.
func runEscapeAnalysis(moduleDir string, pkgDirs []string) (string, error) {
	args := []string{"build", "-gcflags=-m=2"}
	for _, d := range pkgDirs {
		rel, err := filepath.Rel(moduleDir, d)
		if err != nil {
			return "", err
		}
		args = append(args, "./"+filepath.ToSlash(rel))
	}
	cmd := exec.Command("go", args...)
	cmd.Dir = moduleDir
	cmd.Env = append(os.Environ(), "GOFLAGS=")
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	if err := cmd.Run(); err != nil {
		// A build failure is not escape output; surface the head of it.
		head := buf.String()
		if len(head) > 600 {
			head = head[:600] + "..."
		}
		return "", fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, head)
	}
	return buf.String(), nil
}

// matchEscapes maps escape diagnostics onto annotated function spans.
func (c *NoAllocChecker) matchEscapes(u *Unit, spans []funcSpan, out string) []Diagnostic {
	// Index spans by file for line containment checks.
	byFile := map[string][]funcSpan{}
	for _, fs := range spans {
		byFile[fs.file] = append(byFile[fs.file], fs)
	}
	var diags []Diagnostic
	seen := map[string]bool{}
	for _, line := range strings.Split(out, "\n") {
		m := escapeLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		msg := m[4]
		if strings.HasPrefix(msg, " ") { // "flow:" detail lines are indented
			continue
		}
		isEscape := strings.Contains(msg, "escapes to heap") ||
			strings.HasPrefix(msg, "moved to heap:")
		if !isEscape || strings.Contains(msg, "does not escape") {
			continue
		}
		file := m[1]
		if !filepath.IsAbs(file) {
			file = filepath.Join(u.ModuleDir, file)
		}
		lineNo, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		for _, fs := range byFile[file] {
			if lineNo < fs.startLine || lineNo > fs.endLine {
				continue
			}
			key := fmt.Sprintf("%s:%d:%d", file, lineNo, col)
			if seen[key] {
				break
			}
			seen[key] = true
			msg = strings.TrimSuffix(msg, ":")
			diags = append(diags, Diagnostic{
				Pos:   positionAt(file, lineNo, col),
				Check: c.Name(),
				Message: fmt.Sprintf("%s in //dpr:noalloc function %s: %s",
					escapeKind(msg), fs.name, msg),
			})
			break
		}
	}
	return diags
}

func escapeKind(msg string) string {
	if strings.HasPrefix(msg, "moved to heap:") {
		return "heap-moved variable"
	}
	return "heap escape"
}

// positionAt fabricates a token.Position for compiler output positions.
func positionAt(file string, line, col int) token.Position {
	return token.Position{Filename: file, Line: line, Column: col}
}
