package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// EpochChecker enforces the epoch-protection discipline around the paper's
// §5.5 fuzzy version boundaries (internal/epoch):
//
//  1. pairing rule — every epoch.Slot.Enter must reach an Exit (explicit or
//     deferred) on every path out of the function, including early returns.
//     A slot deliberately handed to the caller still entered (guarded
//     admission) documents it with //dpr:ignore, exactly like a handed-off
//     lock.
//
//  2. no blocking while entered — an entered slot gates the table's Drain:
//     the drain waits for every active slot, so anything the entered
//     section blocks on that is (transitively) downstream of a drain is a
//     deadlock. Inside an entered region the checker flags:
//
//     - channel sends, receives, range-over-channel, and selects without a
//       default case;
//     - time.Sleep and sync.WaitGroup.Wait;
//     - calls to epoch.Table.Drain/WaitObserved, directly or through any
//       call chain in the module (the whole-program part: the call graph
//       decides reachability);
//     - acquiring a drain-coupled mutex — a lock some function holds across
//       a transitive drain (e.g. kv's checkpoint state-machine lock): the
//       drain the holder waits on cannot finish until this slot exits;
//     - blocking I/O (net.Conn/net.Listener/os.File reads, writes,
//       accepts, and net dial/listen calls).
//
// The analysis is per-function over the same abstract-interpretation shape
// as the mutex checker (intersection merges, deferred releases); slot types
// are matched by the last path segment of their package, so fixtures can
// declare a miniature epoch package.
type EpochChecker struct{}

func (*EpochChecker) Name() string { return "epoch-discipline" }

const epochPkgPath = "dpr/internal/epoch"

func isEpochSlot(t types.Type) bool  { return isPkgType(t, epochPkgPath, "Slot", true) }
func isEpochTable(t types.Type) bool { return isPkgType(t, epochPkgPath, "Table", true) }

// epochOp is one Enter/Exit call on an epoch slot.
type epochOp struct {
	instance string
	enter    bool
}

// classifyEpochCall recognizes x.Enter() / x.Exit() on epoch.Slot.
func classifyEpochCall(pkg *Package, call *ast.CallExpr) (epochOp, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return epochOp{}, false
	}
	var op epochOp
	switch sel.Sel.Name {
	case "Enter":
		op.enter = true
	case "Exit":
	default:
		return epochOp{}, false
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return epochOp{}, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !isEpochSlot(sig.Recv().Type()) {
		return epochOp{}, false
	}
	op.instance = exprString(sel.X)
	return op, true
}

func (c *EpochChecker) Run(u *Unit) []Diagnostic {
	g := unitGraph(u)
	targets := drainTargets(u)
	coupled := unitDrainCoupled(u)
	var diags []Diagnostic
	funcs := declaredFuncs(u)
	for i := range funcs {
		fs := &funcs[i]
		flow := &epochFlow{u: u, pkg: fs.pkg, check: c.Name(), graph: g, drains: targets, coupled: coupled}
		flow.analyzeBody(fs.decl.Body)
		for _, lit := range collectFuncLits(fs.decl.Body) {
			flow.analyzeBody(lit.lit.Body)
		}
		diags = append(diags, flow.diags...)
	}
	return diags
}

// ---- abstract interpretation ----

type enteredSlot struct {
	pos      token.Pos
	deferred bool // a deferred Exit covers this slot
}

type epochState struct {
	entered      map[string]*enteredSlot
	deferredExit map[string]bool
	terminated   bool
}

func newEpochState() *epochState {
	return &epochState{entered: map[string]*enteredSlot{}, deferredExit: map[string]bool{}}
}

func (s *epochState) clone() *epochState {
	n := newEpochState()
	for k, v := range s.entered {
		cp := *v
		n.entered[k] = &cp
	}
	for k := range s.deferredExit {
		n.deferredExit[k] = true
	}
	return n
}

func mergeEpochStates(states []*epochState) *epochState {
	var live []*epochState
	for _, s := range states {
		if s != nil && !s.terminated {
			live = append(live, s)
		}
	}
	if len(live) == 0 {
		s := newEpochState()
		s.terminated = true
		return s
	}
	out := live[0].clone()
	for k, e := range out.entered {
		for _, s := range live[1:] {
			other, ok := s.entered[k]
			if !ok {
				delete(out.entered, k)
				break
			}
			if other.deferred {
				e.deferred = true
			}
		}
	}
	for _, s := range live[1:] {
		for k := range s.deferredExit {
			out.deferredExit[k] = true
		}
	}
	return out
}

type epochFlow struct {
	u       *Unit
	pkg     *Package
	check   string
	graph   *callGraph
	drains  map[*types.Func]bool
	coupled map[string]token.Pos
	diags   []Diagnostic

	// frames collects the abstract states delivered by `break` statements
	// to their enclosing loop/switch/select, so a slot entered before a
	// break survives into the code after the loop (the guarded-admission
	// shape: `for { slot.Enter(); if ok { break }; slot.Exit() }`).
	frames       []*breakFrame
	pendingLabel string
}

type breakFrame struct {
	label  string
	isLoop bool
	states []*epochState
}

// pushFrame opens a break target, consuming any pending statement label.
func (a *epochFlow) pushFrame(isLoop bool) *breakFrame {
	f := &breakFrame{label: a.pendingLabel, isLoop: isLoop}
	a.pendingLabel = ""
	a.frames = append(a.frames, f)
	return f
}

func (a *epochFlow) popFrame() {
	a.frames = a.frames[:len(a.frames)-1]
}

// deliverBreak hands the current state to the frame a break targets.
func (a *epochFlow) deliverBreak(label string, st *epochState) {
	for i := len(a.frames) - 1; i >= 0; i-- {
		f := a.frames[i]
		if label == "" || f.label == label {
			f.states = append(f.states, st.clone())
			return
		}
	}
}

func (a *epochFlow) analyzeBody(body *ast.BlockStmt) {
	st := newEpochState()
	a.block(body.List, st)
	if !st.terminated {
		a.reportEntered(st, body.Rbrace, "function end")
	}
}

func (a *epochFlow) reportEntered(st *epochState, at token.Pos, where string) {
	for inst, e := range st.entered {
		if e.deferred {
			continue
		}
		a.diags = append(a.diags, Diagnostic{
			Pos:   a.u.Position(at),
			Check: a.check,
			Message: fmt.Sprintf("epoch slot %s entered at %s is still entered at %s (no Exit or deferred Exit on this path)",
				inst, a.u.Position(e.pos), where),
		})
	}
}

// anyEntered returns one entered slot (for diagnostics), or "" when none.
func (st *epochState) anyEntered() (string, token.Pos, bool) {
	for inst, e := range st.entered {
		return inst, e.pos, true
	}
	return "", token.NoPos, false
}

func (a *epochFlow) block(list []ast.Stmt, st *epochState) {
	for _, s := range list {
		if st.terminated {
			return
		}
		a.stmt(s, st)
	}
}

func (a *epochFlow) stmt(s ast.Stmt, st *epochState) {
	a.noteBlocking(s, st)
	switch n := s.(type) {
	case *ast.ExprStmt:
		if call, ok := n.X.(*ast.CallExpr); ok {
			a.call(call, st)
		}
	case *ast.DeferStmt:
		a.deferStmt(n, st)
	case *ast.ReturnStmt:
		a.reportEntered(st, n.Pos(), "this return")
		st.terminated = true
	case *ast.BlockStmt:
		a.block(n.List, st)
	case *ast.IfStmt:
		if n.Init != nil {
			a.stmt(n.Init, st)
		}
		thenSt := st.clone()
		a.block(n.Body.List, thenSt)
		elseSt := st.clone()
		if n.Else != nil {
			a.stmt(n.Else, elseSt)
		}
		*st = *mergeEpochStates([]*epochState{thenSt, elseSt})
	case *ast.ForStmt:
		if n.Init != nil {
			a.stmt(n.Init, st)
		}
		frame := a.pushFrame(true)
		bodySt := st.clone()
		a.block(n.Body.List, bodySt)
		a.popFrame()
		a.loopExit(st, bodySt, frame, n.Cond != nil)
	case *ast.RangeStmt:
		if inst, pos, ok := st.anyEntered(); ok {
			if t := a.pkg.Info.TypeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					a.blockDiag(n.Pos(), "range over channel", inst, pos)
				}
			}
		}
		frame := a.pushFrame(true)
		bodySt := st.clone()
		a.block(n.Body.List, bodySt)
		a.popFrame()
		a.loopExit(st, bodySt, frame, true)
	case *ast.SendStmt:
		if inst, pos, ok := st.anyEntered(); ok {
			a.blockDiag(n.Pos(), "channel send", inst, pos)
		}
	case *ast.SelectStmt:
		if inst, pos, ok := st.anyEntered(); ok && !selectHasDefault(n) {
			a.blockDiag(n.Pos(), "select with no default case", inst, pos)
		}
		a.switchLike(n, st)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		a.switchLike(n, st)
	case *ast.LabeledStmt:
		a.pendingLabel = n.Label.Name
		a.stmt(n.Stmt, st)
		a.pendingLabel = ""
	case *ast.GoStmt:
		// Runs elsewhere; the spawned literal is analyzed independently.
	case *ast.AssignStmt:
		for _, rhs := range n.Rhs {
			if call, ok := rhs.(*ast.CallExpr); ok {
				a.call(call, st)
			}
		}
	case *ast.BranchStmt:
		switch n.Tok {
		case token.BREAK:
			label := ""
			if n.Label != nil {
				label = n.Label.Name
			}
			a.deliverBreak(label, st)
			st.terminated = true
		case token.CONTINUE, token.GOTO:
			st.terminated = true
		}
	}
}

// loopExit computes the state after a loop: the union of every break-out
// state plus, when the loop can complete normally (a condition or range
// that runs dry), the zero-iteration state and the body fallthrough.
func (a *epochFlow) loopExit(st, bodySt *epochState, frame *breakFrame, canFallThrough bool) {
	exits := append([]*epochState{}, frame.states...)
	if canFallThrough {
		exits = append(exits, st.clone(), bodySt)
	}
	if len(exits) == 0 {
		// Infinite loop with no break: nothing after it executes.
		st.terminated = true
		return
	}
	*st = *mergeEpochStates(exits)
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, cl := range s.Body.List {
		if c, ok := cl.(*ast.CommClause); ok && c.Comm == nil {
			return true
		}
	}
	return false
}

func (a *epochFlow) switchLike(s ast.Stmt, st *epochState) {
	var bodies [][]ast.Stmt
	hasDefault := false
	collect := func(body *ast.BlockStmt) {
		for _, cl := range body.List {
			switch c := cl.(type) {
			case *ast.CaseClause:
				bodies = append(bodies, c.Body)
				if c.List == nil {
					hasDefault = true
				}
			case *ast.CommClause:
				bodies = append(bodies, c.Body)
				if c.Comm == nil {
					hasDefault = true
				}
			}
		}
	}
	switch n := s.(type) {
	case *ast.SwitchStmt:
		if n.Init != nil {
			a.stmt(n.Init, st)
		}
		collect(n.Body)
	case *ast.TypeSwitchStmt:
		if n.Init != nil {
			a.stmt(n.Init, st)
		}
		collect(n.Body)
	case *ast.SelectStmt:
		collect(n.Body)
		hasDefault = hasDefault || len(bodies) > 0
	}
	frame := a.pushFrame(false)
	states := make([]*epochState, 0, len(bodies)+1)
	for _, b := range bodies {
		cs := st.clone()
		a.block(b, cs)
		states = append(states, cs)
	}
	a.popFrame()
	states = append(states, frame.states...)
	if !hasDefault || len(bodies) == 0 {
		states = append(states, st.clone())
	}
	*st = *mergeEpochStates(states)
}

// call updates the entered-state for Enter/Exit calls.
func (a *epochFlow) call(call *ast.CallExpr, st *epochState) {
	op, ok := classifyEpochCall(a.pkg, call)
	if !ok {
		return
	}
	if op.enter {
		st.entered[op.instance] = &enteredSlot{pos: call.Pos(), deferred: st.deferredExit[op.instance]}
		return
	}
	delete(st.entered, op.instance)
}

func (a *epochFlow) deferStmt(d *ast.DeferStmt, st *epochState) {
	markExited := func(call *ast.CallExpr) {
		op, ok := classifyEpochCall(a.pkg, call)
		if !ok || op.enter {
			return
		}
		if e, entered := st.entered[op.instance]; entered {
			e.deferred = true
		}
		st.deferredExit[op.instance] = true
	}
	if fl, ok := d.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(fl.Body, func(n ast.Node) bool {
			if c, ok := n.(*ast.CallExpr); ok {
				markExited(c)
			}
			return true
		})
		return
	}
	markExited(d.Call)
}

// noteBlocking scans a statement's embedded expressions for blocking
// operations while a slot is entered: receives and blocking calls.
func (a *epochFlow) noteBlocking(s ast.Stmt, st *epochState) {
	inst, epos, entered := st.anyEntered()
	if !entered {
		return
	}
	var roots []ast.Node
	add := func(e ast.Expr) {
		if e != nil {
			roots = append(roots, e)
		}
	}
	switch n := s.(type) {
	case *ast.ExprStmt:
		add(n.X)
	case *ast.AssignStmt:
		for _, e := range n.Rhs {
			add(e)
		}
	case *ast.ReturnStmt:
		for _, e := range n.Results {
			add(e)
		}
	case *ast.IfStmt:
		add(n.Cond)
	case *ast.ForStmt:
		add(n.Cond)
	case *ast.SwitchStmt:
		add(n.Tag)
	case *ast.DeclStmt:
		roots = append(roots, n)
	}
	for _, root := range roots {
		ast.Inspect(root, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.UnaryExpr:
				if e.Op == token.ARROW {
					a.blockDiag(e.Pos(), "channel receive", inst, epos)
				}
			case *ast.CallExpr:
				a.blockingCall(e, inst, epos)
			}
			return true
		})
	}
}

// blockingCall flags a call expression made while entered when it blocks:
// direct or transitive epoch drains, drain-coupled lock acquisitions,
// sleeps, WaitGroup waits, and blocking I/O.
func (a *epochFlow) blockingCall(call *ast.CallExpr, inst string, epos token.Pos) {
	if op, ok := classifyEpochCall(a.pkg, call); ok && !op.enter {
		return // the paired Exit itself
	}
	if op, ok := classifyLockCall(a.pkg, call); ok {
		if op.acquire && op.keyed {
			if cpos, coupled := a.coupled[op.typeKey]; coupled {
				a.diags = append(a.diags, Diagnostic{
					Pos:   a.u.Position(call.Pos()),
					Check: a.check,
					Message: fmt.Sprintf("%s acquired while epoch slot %s is entered (entered at %s): %s is held across an epoch drain at %s, so the drain cannot finish until this slot exits — deadlock",
						op.typeKey, inst, a.u.Position(epos), op.typeKey, a.u.Position(cpos)),
				})
			}
		}
		return
	}
	// Drain reachability, resolved through the whole-program call graph.
	for _, callee := range a.graph.siteCallees[call] {
		if a.drains[callee] {
			a.blockDiag(call.Pos(), fmt.Sprintf("epoch.Table.%s (self-deadlock against the drain)", callee.Name()), inst, epos)
			return
		}
		if via, ok := a.graph.reachesAny(callee, a.drains); ok {
			a.blockDiag(call.Pos(), fmt.Sprintf("call to %s, which can reach epoch.Table.%s", calleeName(a.graph, callee), via.Name()), inst, epos)
			return
		}
	}
	if fn := calledFunc(a.pkg, call); fn != nil {
		if fn.Pkg() != nil && fn.Pkg().Path() == "time" && fn.Name() == "Sleep" {
			a.blockDiag(call.Pos(), "time.Sleep", inst, epos)
			return
		}
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			recv := sig.Recv().Type()
			if fn.Name() == "Wait" && isPkgType(recv, "sync", "WaitGroup", false) {
				a.blockDiag(call.Pos(), "sync.WaitGroup.Wait", inst, epos)
				return
			}
			if blockingIOMethod(recv, fn.Name()) {
				a.blockDiag(call.Pos(), fmt.Sprintf("blocking I/O (%s.%s)", recv.String(), fn.Name()), inst, epos)
				return
			}
		} else if fn.Pkg() != nil && fn.Pkg().Path() == "net" {
			if strings.HasPrefix(fn.Name(), "Dial") || strings.HasPrefix(fn.Name(), "Listen") {
				a.blockDiag(call.Pos(), "blocking I/O (net."+fn.Name()+")", inst, epos)
				return
			}
		}
	}
}

func (a *epochFlow) blockDiag(at token.Pos, what, inst string, epos token.Pos) {
	a.diags = append(a.diags, Diagnostic{
		Pos:   a.u.Position(at),
		Check: a.check,
		Message: fmt.Sprintf("%s while epoch slot %s is entered (entered at %s); an entered slot gates the table's drain, so blocking here can deadlock it",
			what, inst, a.u.Position(epos)),
	})
}

// calledFunc resolves a call to its *types.Func (declared anywhere,
// including the stdlib), or nil for function values and builtins.
func calledFunc(pkg *Package, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pkg.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pkg.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// blockingIOMethod reports whether recv.name is a blocking I/O entry point
// on net.Conn, net.Listener, their concrete net implementations, or
// os.File.
func blockingIOMethod(recv types.Type, name string) bool {
	switch name {
	case "Read", "Write", "Accept", "ReadFrom", "WriteTo", "AcceptTCP", "ReadFromUDP":
	default:
		return false
	}
	n := namedType(recv)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	switch n.Obj().Pkg().Path() {
	case "net", "os":
		return true
	}
	return false
}

// calleeName renders a declared function for diagnostics.
func calleeName(g *callGraph, fn *types.Func) string {
	if fs, ok := g.spanOf[fn]; ok {
		return pkgShortName(fs.pkg.Pkg) + "." + fs.name
	}
	return fn.Name()
}
