package wire

import (
	"bufio"
	"bytes"
	"math/rand"
	"testing"

	"dpr/internal/core"
	"dpr/internal/libdpr"
)

// TestNumOpsMismatchRejected checks that the header's claimed op count must
// match the number of ops the frame actually carries — a malformed or
// malicious frame must not smuggle a different batch size past libDPR's
// sequence-number accounting.
func TestNumOpsMismatchRejected(t *testing.T) {
	req := &BatchRequest{
		Header: libdpr.BatchHeader{SessionID: 1, NumOps: 2},
		Ops: []Op{
			{Kind: OpUpsert, Key: []byte("k1"), Value: []byte("v1")},
			{Kind: OpRead, Key: []byte("k2")},
		},
	}
	good := EncodeBatchRequest(req)
	if _, err := DecodeBatchRequest(good); err != nil {
		t.Fatalf("matching NumOps must decode: %v", err)
	}
	for _, claim := range []uint32{0, 1, 3, 1 << 20} {
		req.Header.NumOps = claim
		payload := EncodeBatchRequest(req)
		if _, err := DecodeBatchRequest(payload); err == nil {
			t.Fatalf("NumOps=%d with 2 ops must be rejected", claim)
		}
	}
}

// TestReplyEmptyVsAbsentValue checks the presence encoding: a found key with
// an empty value must decode as a non-nil empty slice, distinguishable from
// an absent value (nil).
func TestReplyEmptyVsAbsentValue(t *testing.T) {
	rep := &BatchReply{
		Results: []OpResult{
			{Status: StatusOK, Version: 3, Value: []byte{}},    // present, empty
			{Status: StatusNotFound, Version: 3},               // absent
			{Status: StatusOK, Version: 3, Value: []byte("x")}, // present
		},
		Cut: core.Cut{1: 2},
	}
	got, err := DecodeBatchReply(EncodeBatchReply(rep))
	if err != nil {
		t.Fatal(err)
	}
	if got.Results[0].Value == nil || len(got.Results[0].Value) != 0 {
		t.Fatalf("present empty value decoded as %v, want non-nil empty", got.Results[0].Value)
	}
	if got.Results[1].Value != nil {
		t.Fatalf("absent value decoded as %v, want nil", got.Results[1].Value)
	}
	if string(got.Results[2].Value) != "x" {
		t.Fatalf("value mismatch: %q", got.Results[2].Value)
	}
}

// TestTrailingBytesRejected checks that frames carrying extra bytes beyond
// the encoded structure are rejected for all three frame types.
func TestTrailingBytesRejected(t *testing.T) {
	req := EncodeBatchRequest(&BatchRequest{
		Header: libdpr.BatchHeader{NumOps: 1},
		Ops:    []Op{{Kind: OpRead, Key: []byte("k")}},
	})
	if _, err := DecodeBatchRequest(append(req, 0xAA)); err == nil {
		t.Fatal("request with trailing bytes must be rejected")
	}
	rep := EncodeBatchReply(&BatchReply{Results: []OpResult{{Status: StatusOK}}})
	if _, err := DecodeBatchReply(append(rep, 0xAA)); err == nil {
		t.Fatal("reply with trailing bytes must be rejected")
	}
	er := EncodeError(&ErrorReply{Code: ErrCodeInternal, Message: "m"})
	if _, err := DecodeError(append(er, 0xAA)); err == nil {
		t.Fatal("error with trailing bytes must be rejected")
	}
}

// TestErrorTruncationRejected extends the truncation coverage to error
// frames (requests and replies are covered in wire_test.go).
func TestErrorTruncationRejected(t *testing.T) {
	full := EncodeError(&ErrorReply{Code: ErrCodeRejected, WorldLine: 4, Message: "client must recover"})
	for cut := 0; cut < len(full); cut++ {
		if _, err := DecodeError(full[:cut]); err == nil {
			t.Fatalf("error truncation at %d not detected", cut)
		}
	}
}

// TestDecodeMutatedFrames feeds randomly mutated valid frames to all three
// decoders: every outcome must be a clean decode or an error, never a panic
// or an out-of-range slice. This is the fuzz-style guard for the
// alias-decoding paths.
func TestDecodeMutatedFrames(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	req := EncodeBatchRequest(&BatchRequest{
		Header: libdpr.BatchHeader{SessionID: 9, NumOps: 3},
		Ops: []Op{
			{Kind: OpUpsert, Key: []byte("key-a"), Value: []byte("value-a")},
			{Kind: OpRead, Key: []byte("key-b")},
			{Kind: OpRMW, Key: []byte("key-c"), Value: make([]byte, 8)},
		},
	})
	rep := EncodeBatchReply(&BatchReply{
		WorldLine: 2,
		Results: []OpResult{
			{Status: StatusOK, Version: 5, Value: []byte("v0")},
			{Status: StatusNotFound, Version: 5},
		},
		Cut: core.Cut{1: 4, 2: 3},
	})
	er := EncodeError(&ErrorReply{Code: ErrCodeBadOwner, WorldLine: 1, Message: "not owned"})
	corpus := [][]byte{req, rep, er}
	mutated := make([]byte, 0, 256)
	for iter := 0; iter < 5000; iter++ {
		orig := corpus[iter%len(corpus)]
		mutated = append(mutated[:0], orig...)
		switch iter % 4 {
		case 0: // flip random bytes
			for k := 0; k < 1+rng.Intn(4); k++ {
				mutated[rng.Intn(len(mutated))] ^= byte(1 + rng.Intn(255))
			}
		case 1: // truncate
			mutated = mutated[:rng.Intn(len(mutated))]
		case 2: // extend with garbage
			for k := 0; k < 1+rng.Intn(16); k++ {
				mutated = append(mutated, byte(rng.Intn(256)))
			}
		case 3: // overwrite a length field with a huge value
			if len(mutated) >= 4 {
				off := rng.Intn(len(mutated) - 3)
				mutated[off], mutated[off+1], mutated[off+2], mutated[off+3] = 0xFF, 0xFF, 0xFF, 0x7F
			}
		}
		var reqOut BatchRequest
		_ = DecodeBatchRequestInto(&reqOut, mutated)
		var repOut BatchReply
		_ = DecodeBatchReplyInto(&repOut, mutated)
		_, _ = DecodeError(mutated)
	}
}

// TestFrameReaderReuse checks that consecutive reads reuse the same buffer
// and that payloads from closed readers came from the pool.
func TestFrameReaderReuse(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	for i := 0; i < 3; i++ {
		if err := WriteFrame(w, FrameBatchRequest, []byte{byte(i), 1, 2, 3}); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()
	fr := NewFrameReader(bufio.NewReader(&buf))
	defer fr.Close()
	var prev []byte
	for i := 0; i < 3; i++ {
		tag, p, err := fr.Read()
		if err != nil || tag != FrameBatchRequest {
			t.Fatalf("frame %d: tag %d err %v", i, tag, err)
		}
		if p[0] != byte(i) {
			t.Fatalf("frame %d: payload %v", i, p)
		}
		if prev != nil && &prev[0] != &p[0] {
			t.Fatal("payload must alias the reused frame buffer")
		}
		prev = p
	}
}

// ---- zero-allocation guards for the hot-path encode/decode APIs ----

func TestEncodeDecodeZeroAlloc(t *testing.T) {
	req := benchBatch(64)
	reqPayload := EncodeBatchRequest(req)
	rep := benchReply(64)
	rep.EncodedCut = AppendCut(nil, rep.Cut)
	repPayload := EncodeBatchReply(rep)

	var scratch []byte
	if n := testing.AllocsPerRun(100, func() {
		scratch = AppendBatchRequest(scratch[:0], req)
	}); n != 0 {
		t.Fatalf("AppendBatchRequest allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		scratch = AppendBatchReply(scratch[:0], rep)
	}); n != 0 {
		t.Fatalf("AppendBatchReply allocates %.1f/op, want 0", n)
	}
	var reqOut BatchRequest
	if n := testing.AllocsPerRun(100, func() {
		if err := DecodeBatchRequestInto(&reqOut, reqPayload); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("DecodeBatchRequestInto allocates %.1f/op, want 0", n)
	}
	var repOut BatchReply
	if n := testing.AllocsPerRun(100, func() {
		if err := DecodeBatchReplyInto(&repOut, repPayload); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("DecodeBatchReplyInto allocates %.1f/op, want 0", n)
	}

	cut := core.Cut{1: 9, 2: 7, 3: 5}
	encodedCut := AppendCut(nil, cut)
	cutPayload := AppendCutAdvance(nil, 2, cut)
	if n := testing.AllocsPerRun(100, func() {
		scratch = AppendCutAdvance(scratch[:0], 2, cut)
	}); n != 0 {
		t.Fatalf("AppendCutAdvance allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		scratch = AppendCutAdvanceEncoded(scratch[:0], 2, encodedCut)
	}); n != 0 {
		t.Fatalf("AppendCutAdvanceEncoded allocates %.1f/op, want 0", n)
	}
	var cutOut CutAdvance
	if n := testing.AllocsPerRun(100, func() {
		if err := DecodeCutAdvanceInto(&cutOut, cutPayload); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("DecodeCutAdvanceInto allocates %.1f/op, want 0", n)
	}
}

// TestCutAdvanceRejects pins the cut-advance decode guards: truncation at
// every offset, trailing garbage, and oversized entry counts must all error
// without panicking or over-allocating.
func TestCutAdvanceRejects(t *testing.T) {
	full := AppendCutAdvance(nil, 4, core.Cut{1: 2, 3: 4})
	for cut := 0; cut < len(full); cut++ {
		if _, err := DecodeCutAdvance(full[:cut]); err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
	if _, err := DecodeCutAdvance(append(append([]byte{}, full...), 0xAA)); err == nil {
		t.Fatal("trailing bytes must be rejected")
	}
	huge := appendU64(nil, 1)
	huge = appendU32(huge, 1<<30) // count far beyond the payload
	if _, err := DecodeCutAdvance(huge); err == nil {
		t.Fatal("oversized cut count must be rejected before allocation")
	}
	// A failed decode into a reused value must not leave stale entries
	// behind: the next push would otherwise merge two cuts.
	var a CutAdvance
	if err := DecodeCutAdvanceInto(&a, full); err != nil || len(a.Cut) != 2 {
		t.Fatalf("valid decode: %v (%v)", err, a.Cut)
	}
	if err := DecodeCutAdvanceInto(&a, full[:len(full)-3]); err == nil || len(a.Cut) != 0 {
		t.Fatalf("failed decode left stale cut entries: %v (%v)", err, a.Cut)
	}
}

func TestFrameIOZeroAlloc(t *testing.T) {
	payload := EncodeBatchRequest(benchBatch(64))
	frame := make([]byte, 0, len(payload)+5)
	n := uint32(len(payload) + 1)
	frame = append(frame, byte(n), byte(n>>8), byte(n>>16), byte(n>>24), FrameBatchRequest)
	frame = append(frame, payload...)
	fr := NewFrameReader(newLoopReader(frame))
	defer fr.Close()
	if a := testing.AllocsPerRun(100, func() {
		if _, _, err := fr.Read(); err != nil {
			t.Fatal(err)
		}
	}); a != 0 {
		t.Fatalf("FrameReader.Read allocates %.1f/op, want 0", a)
	}
	// Sized so the ~101 frames of the measurement loop never trigger a
	// flush: the guard measures WriteFrame itself.
	var sink bytes.Buffer
	bw := bufio.NewWriterSize(&sink, 1<<22)
	if a := testing.AllocsPerRun(100, func() {
		if err := WriteFrame(bw, FrameBatchRequest, payload); err != nil {
			t.Fatal(err)
		}
	}); a != 0 {
		t.Fatalf("WriteFrame allocates %.1f/op, want 0", a)
	}
}
