package wire

import (
	"testing"

	"dpr/internal/core"
	"dpr/internal/libdpr"
)

func benchBatch(n int) *BatchRequest {
	req := &BatchRequest{
		Header: libdpr.BatchHeader{
			SessionID: 7, WorldLine: 1, Vs: 42, SeqStart: 1000, NumOps: uint32(n),
			Dep: core.Token{Worker: 3, Version: 41},
		},
	}
	for i := 0; i < n; i++ {
		req.Ops = append(req.Ops, Op{
			Kind: OpUpsert, Key: []byte("12345678"), Value: []byte("abcdefgh"),
		})
	}
	return req
}

func BenchmarkEncodeBatch64(b *testing.B) {
	req := benchBatch(64)
	b.ReportAllocs()
	var total int
	for i := 0; i < b.N; i++ {
		total += len(EncodeBatchRequest(req))
	}
	_ = total
}

func BenchmarkDecodeBatch64(b *testing.B) {
	payload := EncodeBatchRequest(benchBatch(64))
	b.ReportAllocs()
	b.SetBytes(int64(len(payload)))
	for i := 0; i < b.N; i++ {
		if _, err := DecodeBatchRequest(payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeReply64(b *testing.B) {
	rep := &BatchReply{WorldLine: 1, Cut: core.Cut{1: 10, 2: 9}}
	for i := 0; i < 64; i++ {
		rep.Results = append(rep.Results, OpResult{Status: StatusOK, Version: 10})
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		EncodeBatchReply(rep)
	}
}

func BenchmarkDecodeReply64(b *testing.B) {
	rep := &BatchReply{WorldLine: 1, Cut: core.Cut{1: 10, 2: 9}}
	for i := 0; i < 64; i++ {
		rep.Results = append(rep.Results, OpResult{Status: StatusOK, Version: 10})
	}
	payload := EncodeBatchReply(rep)
	b.ReportAllocs()
	b.SetBytes(int64(len(payload)))
	for i := 0; i < b.N; i++ {
		if _, err := DecodeBatchReply(payload); err != nil {
			b.Fatal(err)
		}
	}
}
