package wire

import (
	"bufio"
	"testing"

	"dpr/internal/core"
	"dpr/internal/libdpr"
)

// loopReader replays one frame forever, so frame-read benchmarks measure
// parsing rather than transport.
type loopReader struct {
	frame []byte
	off   int
}

func (l *loopReader) Read(p []byte) (int, error) {
	if l.off == len(l.frame) {
		l.off = 0
	}
	n := copy(p, l.frame[l.off:])
	l.off += n
	return n, nil
}

func newLoopReader(frame []byte) *bufio.Reader {
	return bufio.NewReaderSize(&loopReader{frame: frame}, 1<<16)
}

func benchBatch(n int) *BatchRequest {
	req := &BatchRequest{
		Header: libdpr.BatchHeader{
			SessionID: 7, WorldLine: 1, Vs: 42, SeqStart: 1000, NumOps: uint32(n),
			Dep: core.Token{Worker: 3, Version: 41},
		},
	}
	for i := 0; i < n; i++ {
		req.Ops = append(req.Ops, Op{
			Kind: OpUpsert, Key: []byte("12345678"), Value: []byte("abcdefgh"),
		})
	}
	return req
}

func benchReply(n int) *BatchReply {
	rep := &BatchReply{WorldLine: 1, Cut: core.Cut{1: 10, 2: 9}}
	for i := 0; i < n; i++ {
		rep.Results = append(rep.Results, OpResult{Status: StatusOK, Version: 10})
	}
	return rep
}

func BenchmarkEncodeBatch64(b *testing.B) {
	req := benchBatch(64)
	var scratch []byte
	b.ReportAllocs()
	var total int
	for i := 0; i < b.N; i++ {
		scratch = AppendBatchRequest(scratch[:0], req)
		total += len(scratch)
	}
	_ = total
}

func BenchmarkDecodeBatch64(b *testing.B) {
	payload := EncodeBatchRequest(benchBatch(64))
	var req BatchRequest
	b.ReportAllocs()
	b.SetBytes(int64(len(payload)))
	for i := 0; i < b.N; i++ {
		if err := DecodeBatchRequestInto(&req, payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeReply64(b *testing.B) {
	rep := benchReply(64)
	var scratch []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		scratch = AppendBatchReply(scratch[:0], rep)
	}
}

// BenchmarkEncodeReply64PrecodedCut measures the steady-state server reply
// path: the piggybacked cut is pre-encoded once per refresh, not per reply.
func BenchmarkEncodeReply64PrecodedCut(b *testing.B) {
	rep := benchReply(64)
	rep.EncodedCut = AppendCut(nil, rep.Cut)
	var scratch []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		scratch = AppendBatchReply(scratch[:0], rep)
	}
}

func BenchmarkDecodeReply64(b *testing.B) {
	payload := EncodeBatchReply(benchReply(64))
	var rep BatchReply
	b.ReportAllocs()
	b.SetBytes(int64(len(payload)))
	for i := 0; i < b.N; i++ {
		if err := DecodeBatchReplyInto(&rep, payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFrameReadWrite(b *testing.B) {
	// Frame round trip through an in-memory pipe-backed pair is dominated by
	// scheduling; measure the encode+decode halves directly instead via a
	// prebuilt frame in a loop reader.
	payload := EncodeBatchRequest(benchBatch(64))
	frame := make([]byte, 0, len(payload)+5)
	frame = append(frame, byte(len(payload)+1), byte((len(payload)+1)>>8), byte((len(payload)+1)>>16), byte((len(payload)+1)>>24))
	frame = append(frame, FrameBatchRequest)
	frame = append(frame, payload...)
	fr := NewFrameReader(newLoopReader(frame))
	defer fr.Close()
	var req BatchRequest
	b.ReportAllocs()
	b.SetBytes(int64(len(frame)))
	for i := 0; i < b.N; i++ {
		_, p, err := fr.Read()
		if err != nil {
			b.Fatal(err)
		}
		if err := DecodeBatchRequestInto(&req, p); err != nil {
			b.Fatal(err)
		}
	}
}
