// Cut-advance frames: the unsolicited worker→client push channel of the
// event-driven commit plane. Batch replies piggyback the worker's cut view,
// but a session that stops sending would never learn that its last writes
// committed — it would have to poll the finder. Instead the worker pushes a
// FrameCutAdvance to every subscribed connection when its cut snapshot
// changes (libdpr.Worker.OnCutAdvance), so idle sessions see commit progress
// in push latency rather than poll cadence.
//
// The frame follows the batch-path discipline: Append* into a caller-owned
// scratch buffer (//dpr:noalloc — the push fan-out runs once per cut change
// per connection, but cut changes arrive every couple of milliseconds with
// the commit pump on), an alias-decoding DecodeCutAdvanceInto with
// count-validation before any allocation, and trailing-byte rejection.
package wire

import "dpr/internal/core"

// FrameCutAdvance is an unsolicited worker→client frame announcing the
// worker's latest (world-line, cut) view (continuing the Frame* tag space).
// Clients must tolerate it at any point between reply frames.
const FrameCutAdvance byte = 8

// CutAdvance pairs a pushed cut with the world-line it was observed on.
// Version numbers restart across world-lines, so the pair travels together:
// folding a cut into a session on a different world-line could commit erased
// operations whose tokens merely collide numerically.
type CutAdvance struct {
	WorldLine core.WorldLine
	Cut       core.Cut
}

// AppendCutAdvance appends the cut-advance encoding to dst.
//
//dpr:noalloc
func AppendCutAdvance(dst []byte, wl core.WorldLine, c core.Cut) []byte {
	dst = appendU64(dst, uint64(wl))
	return AppendCut(dst, c)
}

// AppendCutAdvanceEncoded appends a cut-advance frame built from a
// pre-encoded cut section (AppendCut output, as published by
// libdpr.Worker.OnCutAdvance): the per-connection fan-out splices the
// snapshot's bytes instead of re-serializing the cut map for every
// subscriber.
//
//dpr:noalloc
func AppendCutAdvanceEncoded(dst []byte, wl core.WorldLine, encodedCut []byte) []byte {
	dst = appendU64(dst, uint64(wl))
	return append(dst, encodedCut...)
}

// DecodeCutAdvanceInto parses a cut-advance payload into a, reusing a.Cut.
// Nothing in the decoded form aliases p (cuts are small and copied into the
// map), but the count is still validated against the payload size before any
// allocation so a corrupt frame cannot drive a gigantic pre-allocation.
//
//dpr:noalloc
func DecodeCutAdvanceInto(a *CutAdvance, p []byte) error {
	d := &decoder{buf: p}
	a.WorldLine = core.WorldLine(d.u64())
	cn := int(d.u32())
	if d.err == nil && cn > len(p) { // each cut entry needs 12 bytes
		clear(a.Cut) // keep the reject contract: no stale entries on error
		return errCutCount
	}
	if a.Cut == nil {
		a.Cut = make(core.Cut, cn) //dpr:ignore hotpath-noalloc first decode only; later decodes clear and refill the map
	} else {
		clear(a.Cut)
	}
	if d.err == nil && cn > 0 {
		for i := 0; i < cn; i++ {
			w := core.WorkerID(d.u32())
			v := core.Version(d.u64())
			if d.err == nil {
				a.Cut[w] = v
			}
		}
	}
	if err := d.finish(); err != nil {
		clear(a.Cut)
		return err
	}
	return nil
}

// DecodeCutAdvance parses a cut-advance payload into a fresh value.
// Transient callers only; connection read loops should hold a CutAdvance and
// use DecodeCutAdvanceInto.
func DecodeCutAdvance(p []byte) (*CutAdvance, error) {
	var a CutAdvance
	if err := DecodeCutAdvanceInto(&a, p); err != nil {
		return nil, err
	}
	return &a, nil
}
