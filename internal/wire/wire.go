// Package wire defines the binary protocol between D-FASTER/D-Redis clients
// and workers: length-prefixed frames carrying request batches with DPR
// headers (§6) and replies with per-operation versions plus a piggybacked
// DPR cut. The encoding is hand-rolled little-endian — no reflection — so
// the serialization cost stays negligible next to the operations themselves.
//
// # Memory discipline
//
// The hot path is allocation-free in steady state. The rules:
//
//   - FrameReader reads every frame into one reusable per-connection buffer
//     (pool-backed). The payload returned by FrameReader.Read is valid only
//     until the next Read; retaining it across frames is a bug.
//   - DecodeBatchRequest / DecodeBatchRequestInto alias Op.Key and Op.Value
//     into the frame payload — zero copy. The decoded batch must be fully
//     consumed (executed or copied) before the payload buffer is reused.
//     Store layers that retain key/value bytes must copy them (kv copies
//     into its log; redisclone copies in its event loop).
//   - DecodeBatchReply / DecodeBatchReplyInto alias OpResult.Value into the
//     payload under the same contract.
//   - AppendBatchRequest/AppendBatchReply/AppendError append into a
//     caller-owned scratch buffer; callers reuse the buffer across frames.
//     The copy into that buffer is the single copy-before-reply point at
//     the wire boundary.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"

	"dpr/internal/core"
	"dpr/internal/libdpr"
)

// Frame type tags.
const (
	FrameBatchRequest byte = 1
	FrameBatchReply   byte = 2
	FrameError        byte = 3
)

// Op kinds inside a batch.
const (
	OpRead   byte = 1
	OpUpsert byte = 2
	OpDelete byte = 3
	OpRMW    byte = 4
)

// Op statuses in replies (mirrors kv.Status but wire-stable).
const (
	StatusOK       byte = 0
	StatusNotFound byte = 1
	StatusError    byte = 3
)

// Error codes in error frames.
const (
	ErrCodeRejected  byte = 1 // world-line mismatch: client must recover
	ErrCodeBadOwner  byte = 2 // key not owned by this worker
	ErrCodeInternal  byte = 3
	ErrCodeRetryable byte = 4
	ErrCodeStale     byte = 5 // batch seq range superseded within its session
	ErrCodeMoved     byte = 6 // partition migrated away; ErrorReply.NewOwner is the new owner
)

// MaxFrameSize bounds a single frame (16 MiB).
const MaxFrameSize = 16 << 20

// Op is one operation in a batch.
type Op struct {
	Kind  byte
	Key   []byte
	Value []byte // upsert payload, or 8-byte RMW delta
}

// BatchRequest is a client→worker frame.
type BatchRequest struct {
	Header libdpr.BatchHeader
	Ops    []Op
}

// OpResult is one operation's outcome in a reply. A nil Value means the
// operation produced no value (write acks, misses); a non-nil empty Value is
// a legitimate zero-length read result and is preserved on the wire.
type OpResult struct {
	Status  byte
	Version core.Version
	Value   []byte
}

// BatchReply is a worker→client frame.
type BatchReply struct {
	WorldLine core.WorldLine
	Results   []OpResult
	Cut       core.Cut
	// EncodedCut, when non-nil, is a pre-encoded cut section (produced by
	// AppendCut) spliced verbatim into the encoding in place of Cut. libDPR
	// workers pre-encode the piggybacked cut once per refresh instead of
	// re-serializing the map on every reply. Encode-side only; decoding
	// always populates Cut.
	EncodedCut []byte
}

// ErrorReply is a worker→client error frame. NewOwner is meaningful only for
// ErrCodeMoved: the worker that now owns the batch's partition, so the client
// can re-route a redirected batch without a metadata round trip.
type ErrorReply struct {
	Code      byte
	WorldLine core.WorldLine
	NewOwner  core.WorkerID
	Message   string
}

func (e *ErrorReply) Error() string {
	return fmt.Sprintf("wire: remote error %d (world-line %d): %s", e.Code, e.WorldLine, e.Message)
}

// ---- encoding helpers ----

func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }
func appendBytes(b, p []byte) []byte {
	b = appendU32(b, uint32(len(p)))
	return append(b, p...)
}

type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) u8() byte {
	if d.err != nil || d.off+1 > len(d.buf) {
		d.fail()
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}
func (d *decoder) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.buf) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}
func (d *decoder) u64() uint64 {
	if d.err != nil || d.off+8 > len(d.buf) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

// bytes returns a slice aliasing the decode buffer (zero copy). Zero-length
// fields decode to a non-nil empty slice.
func (d *decoder) bytes() []byte {
	n := int(d.u32())
	if d.err != nil || n < 0 || d.off+n > len(d.buf) {
		d.fail()
		return nil
	}
	v := d.buf[d.off : d.off+n]
	d.off += n
	return v
}

// Decode errors are package-level sentinels: the decoders are //dpr:noalloc
// and an inline errors.New would heap-allocate per malformed frame on an
// attacker-controlled reject path.
var (
	errTruncatedFrame = errors.New("wire: truncated frame")
	errOpCount        = errors.New("wire: op count exceeds frame")
	errResultCount    = errors.New("wire: result count exceeds frame")
	errCutCount       = errors.New("wire: cut entry count exceeds frame")
	errPartCount      = errors.New("wire: partition count exceeds frame")
	errRecordCount    = errors.New("wire: record count exceeds frame")
)

func (d *decoder) fail() {
	if d.err == nil {
		d.err = errTruncatedFrame
	}
}

// finish flags frames with bytes beyond the decoded content (oversized or
// corrupt frames must not be silently accepted).
func (d *decoder) finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("wire: %d trailing bytes after frame content", len(d.buf)-d.off)
	}
	return nil
}

// ---- buffer pool ----

// bufPool recycles frame/scratch buffers across connections. Buffers are
// pooled as pointers-to-slices so Put does not allocate.
var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// GetBuffer fetches a zero-length scratch buffer from the pool.
func GetBuffer() *[]byte {
	b := bufPool.Get().(*[]byte)
	*b = (*b)[:0]
	return b
}

// PutBuffer returns a scratch buffer to the pool. The caller must not use
// the buffer (or any slice aliasing it) afterwards.
func PutBuffer(b *[]byte) {
	if b == nil || cap(*b) > MaxFrameSize {
		return // don't pool pathological giants
	}
	bufPool.Put(b)
}

// ---- frame I/O ----

// WriteFrame writes a tagged, length-prefixed frame. The header goes out
// byte-by-byte rather than via a stack array: a slice of a local array
// escapes into the underlying io.Writer interface and heap-allocates per
// frame, while WriteByte stays on the bufio fast path. bufio errors are
// sticky, so the final Write reports any earlier failure.
//
//dpr:noalloc
func WriteFrame(w *bufio.Writer, tag byte, payload []byte) error {
	n := uint32(len(payload) + 1)
	w.WriteByte(byte(n))
	w.WriteByte(byte(n >> 8))
	w.WriteByte(byte(n >> 16))
	w.WriteByte(byte(n >> 24))
	w.WriteByte(tag)
	_, err := w.Write(payload)
	return err
}

// FrameReader reads frames into a reusable pool-backed buffer, so steady
// state frame input performs no allocation. The payload returned by Read is
// valid only until the next Read (or Close).
type FrameReader struct {
	r   *bufio.Reader
	buf *[]byte
}

// NewFrameReader wraps r with a pooled frame buffer.
func NewFrameReader(r *bufio.Reader) *FrameReader {
	return &FrameReader{r: r, buf: GetBuffer()}
}

// Read reads one frame, returning its tag and payload. The payload aliases
// the reader's internal buffer: it is overwritten by the next Read.
//
//dpr:noalloc
func (fr *FrameReader) Read() (byte, []byte, error) {
	// Peek the length prefix out of the bufio buffer instead of ReadFull
	// into a local array: the array escapes into the io.Reader interface
	// and heap-allocates per frame.
	hdr, err := fr.r.Peek(4)
	if err != nil {
		if err == io.EOF && len(hdr) > 0 {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	n := int(binary.LittleEndian.Uint32(hdr))
	fr.r.Discard(4)
	if n == 0 || n > MaxFrameSize {
		return 0, nil, fmt.Errorf("wire: bad frame size %d", n) //dpr:ignore hotpath-noalloc cold reject path: only corrupt length prefixes reach the formatter
	}
	buf := *fr.buf
	if cap(buf) < n {
		buf = make([]byte, n) //dpr:ignore hotpath-noalloc grows once to the connection frame high-water mark; steady state reuses the pooled buffer
		*fr.buf = buf
	}
	buf = buf[:n]
	if _, err := io.ReadFull(fr.r, buf); err != nil {
		return 0, nil, err
	}
	return buf[0], buf[1:], nil
}

// Buffered reports how many bytes of unread input sit in the underlying
// reader — a "more frames immediately available" probe for flush batching.
func (fr *FrameReader) Buffered() int { return fr.r.Buffered() }

// Close returns the frame buffer to the pool. The FrameReader (and any
// payload it returned) must not be used afterwards.
func (fr *FrameReader) Close() {
	if fr.buf != nil {
		PutBuffer(fr.buf)
		fr.buf = nil
	}
}

// ReadFrame reads one frame into a freshly allocated payload. Transient
// callers only; connection loops should hold a FrameReader instead.
func ReadFrame(r *bufio.Reader) (byte, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || n > MaxFrameSize {
		return 0, nil, fmt.Errorf("wire: bad frame size %d", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return payload[0], payload[1:], nil
}

// ---- batch request ----

// AppendBatchRequest appends the request encoding to dst and returns the
// extended buffer. Steady-state callers reuse dst across batches.
//
//dpr:noalloc
func AppendBatchRequest(dst []byte, b *BatchRequest) []byte {
	h := b.Header
	dst = appendU64(dst, h.SessionID)
	dst = appendU64(dst, uint64(h.WorldLine))
	dst = appendU64(dst, uint64(h.Vs))
	dst = appendU64(dst, h.SeqStart)
	dst = appendU32(dst, h.NumOps)
	dst = appendU32(dst, uint32(h.Dep.Worker))
	dst = appendU64(dst, uint64(h.Dep.Version))
	var flags byte
	if h.Redirected {
		flags |= 1
	}
	dst = append(dst, flags)
	dst = appendU32(dst, uint32(len(b.Ops)))
	for i := range b.Ops {
		op := &b.Ops[i]
		dst = append(dst, op.Kind)
		dst = appendBytes(dst, op.Key)
		dst = appendBytes(dst, op.Value)
	}
	return dst
}

// EncodeBatchRequest serializes a batch request payload into a fresh buffer.
func EncodeBatchRequest(b *BatchRequest) []byte {
	return AppendBatchRequest(make([]byte, 0, 64+len(b.Ops)*32), b)
}

// DecodeBatchRequestInto parses a batch request payload into b, reusing
// b.Ops. Keys and values alias p (zero copy): the caller owns p and must not
// reuse it until the decoded batch has been fully consumed.
//
//dpr:noalloc
func DecodeBatchRequestInto(b *BatchRequest, p []byte) error {
	d := &decoder{buf: p}
	b.Header.SessionID = d.u64()
	b.Header.WorldLine = core.WorldLine(d.u64())
	b.Header.Vs = core.Version(d.u64())
	b.Header.SeqStart = d.u64()
	b.Header.NumOps = d.u32()
	b.Header.Dep.Worker = core.WorkerID(d.u32())
	b.Header.Dep.Version = core.Version(d.u64())
	b.Header.Redirected = d.u8()&1 != 0
	n := int(d.u32())
	b.Ops = b.Ops[:0]
	if d.err == nil && n > 0 {
		if n > len(p) { // cheap sanity bound: each op needs ≥9 bytes
			return errOpCount
		}
		if cap(b.Ops) < n {
			b.Ops = make([]Op, n) //dpr:ignore hotpath-noalloc grows once to the batch high-water mark; steady state reuses b.Ops
		}
		b.Ops = b.Ops[:n]
		for i := 0; i < n; i++ {
			b.Ops[i].Kind = d.u8()
			b.Ops[i].Key = d.bytes()
			b.Ops[i].Value = d.bytes()
		}
	}
	if err := d.finish(); err != nil {
		b.Ops = b.Ops[:0]
		return err
	}
	if b.Header.NumOps != uint32(n) {
		b.Ops = b.Ops[:0]
		return fmt.Errorf("wire: header claims %d ops, frame carries %d", b.Header.NumOps, n) //dpr:ignore hotpath-noalloc cold reject path: only malformed frames reach the formatter
	}
	return nil
}

// DecodeBatchRequest parses a batch request payload. Keys and values alias p
// (zero copy); see DecodeBatchRequestInto for the ownership contract.
func DecodeBatchRequest(p []byte) (*BatchRequest, error) {
	var b BatchRequest
	if err := DecodeBatchRequestInto(&b, p); err != nil {
		return nil, err
	}
	return &b, nil
}

// ---- batch reply ----

// AppendCut appends the cut section encoding (entry count + entries) to dst.
// The result can be cached and spliced into replies via BatchReply.EncodedCut.
//
//dpr:ignore cut-worldline encode-only splice helper; the (world-line, cut) pairing is fixed where the snapshot is captured (libdpr cutSnapshot) and the world-line travels in the reply header
func AppendCut(dst []byte, c core.Cut) []byte {
	dst = appendU32(dst, uint32(len(c)))
	for w, v := range c {
		dst = appendU32(dst, uint32(w))
		dst = appendU64(dst, uint64(v))
	}
	return dst
}

// AppendBatchReply appends the reply encoding to dst and returns the
// extended buffer. Values are copied out of r.Results here — this is the
// copy-before-reply point for results that alias store memory or a batch
// arena. If r.EncodedCut is non-nil it is spliced verbatim (and r.Cut is
// ignored); otherwise the cut map is serialized.
//
//dpr:noalloc
func AppendBatchReply(dst []byte, r *BatchReply) []byte {
	dst = appendU64(dst, uint64(r.WorldLine))
	dst = appendU32(dst, uint32(len(r.Results)))
	for i := range r.Results {
		res := &r.Results[i]
		dst = append(dst, res.Status)
		dst = appendU64(dst, uint64(res.Version))
		if res.Value == nil {
			dst = append(dst, 0)
		} else {
			dst = append(dst, 1)
			dst = appendBytes(dst, res.Value)
		}
	}
	if r.EncodedCut != nil {
		return append(dst, r.EncodedCut...)
	}
	return AppendCut(dst, r.Cut)
}

// EncodeBatchReply serializes a reply payload into a fresh buffer.
func EncodeBatchReply(r *BatchReply) []byte {
	return AppendBatchReply(make([]byte, 0, 32+len(r.Results)*24), r)
}

// DecodeBatchReplyInto parses a reply payload into r, reusing r.Results and
// r.Cut. Values alias p (zero copy): the caller owns p and must not reuse it
// until the decoded reply has been fully consumed. Absent values decode as
// nil; present zero-length values decode as non-nil empty slices.
//
//dpr:noalloc
func DecodeBatchReplyInto(r *BatchReply, p []byte) error {
	d := &decoder{buf: p}
	r.WorldLine = core.WorldLine(d.u64())
	n := int(d.u32())
	r.Results = r.Results[:0]
	r.EncodedCut = nil
	if d.err == nil && n > 0 {
		if n > len(p) {
			return errResultCount
		}
		if cap(r.Results) < n {
			r.Results = make([]OpResult, n) //dpr:ignore hotpath-noalloc grows once to the batch high-water mark; steady state reuses r.Results
		}
		r.Results = r.Results[:n]
		for i := 0; i < n; i++ {
			r.Results[i].Status = d.u8()
			r.Results[i].Version = core.Version(d.u64())
			if d.u8() != 0 {
				r.Results[i].Value = d.bytes()
			} else {
				r.Results[i].Value = nil
			}
		}
	}
	cn := int(d.u32())
	if d.err == nil && cn > len(p) {
		// Validate before sizing the map: a corrupt count must not drive a
		// gigantic pre-allocation.
		r.Results = r.Results[:0]
		return errCutCount
	}
	if r.Cut == nil {
		r.Cut = make(core.Cut, cn) //dpr:ignore hotpath-noalloc first decode only; later decodes clear and refill the map
	} else {
		clear(r.Cut)
	}
	if d.err == nil && cn > 0 {
		for i := 0; i < cn; i++ {
			w := core.WorkerID(d.u32())
			v := core.Version(d.u64())
			if d.err == nil {
				r.Cut[w] = v
			}
		}
	}
	if err := d.finish(); err != nil {
		r.Results = r.Results[:0]
		return err
	}
	return nil
}

// DecodeBatchReply parses a reply payload. Values alias p (zero copy); see
// DecodeBatchReplyInto for the ownership contract.
func DecodeBatchReply(p []byte) (*BatchReply, error) {
	var r BatchReply
	if err := DecodeBatchReplyInto(&r, p); err != nil {
		return nil, err
	}
	return &r, nil
}

// ---- error reply ----

// AppendError appends the error encoding to dst.
//
//dpr:noalloc
func AppendError(dst []byte, e *ErrorReply) []byte {
	dst = append(dst, e.Code)
	dst = appendU64(dst, uint64(e.WorldLine))
	dst = appendU32(dst, uint32(e.NewOwner))
	dst = appendU32(dst, uint32(len(e.Message)))
	return append(dst, e.Message...)
}

// EncodeError serializes an error payload.
func EncodeError(e *ErrorReply) []byte {
	return AppendError(make([]byte, 0, 16+len(e.Message)), e)
}

// DecodeError parses an error payload.
func DecodeError(p []byte) (*ErrorReply, error) {
	d := &decoder{buf: p}
	var e ErrorReply
	e.Code = d.u8()
	e.WorldLine = core.WorldLine(d.u64())
	e.NewOwner = core.WorkerID(d.u32())
	e.Message = string(d.bytes())
	if err := d.finish(); err != nil {
		return nil, err
	}
	return &e, nil
}
