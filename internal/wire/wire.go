// Package wire defines the binary protocol between D-FASTER/D-Redis clients
// and workers: length-prefixed frames carrying request batches with DPR
// headers (§6) and replies with per-operation versions plus a piggybacked
// DPR cut. The encoding is hand-rolled little-endian — no reflection — so
// the serialization cost stays negligible next to the operations themselves.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"dpr/internal/core"
	"dpr/internal/libdpr"
)

// Frame type tags.
const (
	FrameBatchRequest byte = 1
	FrameBatchReply   byte = 2
	FrameError        byte = 3
)

// Op kinds inside a batch.
const (
	OpRead   byte = 1
	OpUpsert byte = 2
	OpDelete byte = 3
	OpRMW    byte = 4
)

// Op statuses in replies (mirrors kv.Status but wire-stable).
const (
	StatusOK       byte = 0
	StatusNotFound byte = 1
	StatusError    byte = 3
)

// Error codes in error frames.
const (
	ErrCodeRejected  byte = 1 // world-line mismatch: client must recover
	ErrCodeBadOwner  byte = 2 // key not owned by this worker
	ErrCodeInternal  byte = 3
	ErrCodeRetryable byte = 4
)

// MaxFrameSize bounds a single frame (16 MiB).
const MaxFrameSize = 16 << 20

// Op is one operation in a batch.
type Op struct {
	Kind  byte
	Key   []byte
	Value []byte // upsert payload, or 8-byte RMW delta
}

// BatchRequest is a client→worker frame.
type BatchRequest struct {
	Header libdpr.BatchHeader
	Ops    []Op
}

// OpResult is one operation's outcome in a reply.
type OpResult struct {
	Status  byte
	Version core.Version
	Value   []byte
}

// BatchReply is a worker→client frame.
type BatchReply struct {
	WorldLine core.WorldLine
	Results   []OpResult
	Cut       core.Cut
}

// ErrorReply is a worker→client error frame.
type ErrorReply struct {
	Code      byte
	WorldLine core.WorldLine
	Message   string
}

func (e *ErrorReply) Error() string {
	return fmt.Sprintf("wire: remote error %d (world-line %d): %s", e.Code, e.WorldLine, e.Message)
}

// ---- encoding helpers ----

type encoder struct{ buf []byte }

func (e *encoder) u8(v byte)    { e.buf = append(e.buf, v) }
func (e *encoder) u32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *encoder) u64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *encoder) bytes(b []byte) {
	e.u32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) u8() byte {
	if d.err != nil || d.off+1 > len(d.buf) {
		d.fail()
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}
func (d *decoder) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.buf) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}
func (d *decoder) u64() uint64 {
	if d.err != nil || d.off+8 > len(d.buf) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}
func (d *decoder) bytes() []byte {
	n := int(d.u32())
	if d.err != nil || n < 0 || d.off+n > len(d.buf) {
		d.fail()
		return nil
	}
	v := d.buf[d.off : d.off+n]
	d.off += n
	return v
}
func (d *decoder) fail() {
	if d.err == nil {
		d.err = errors.New("wire: truncated frame")
	}
}

// ---- frame I/O ----

// WriteFrame writes a tagged, length-prefixed frame.
func WriteFrame(w *bufio.Writer, tag byte, payload []byte) error {
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)+1))
	hdr[4] = tag
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	return nil
}

// ReadFrame reads one frame, returning its tag and payload.
func ReadFrame(r *bufio.Reader) (byte, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || n > MaxFrameSize {
		return 0, nil, fmt.Errorf("wire: bad frame size %d", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return payload[0], payload[1:], nil
}

// ---- batch request ----

// EncodeBatchRequest serializes a batch request payload.
func EncodeBatchRequest(b *BatchRequest) []byte {
	e := &encoder{buf: make([]byte, 0, 64+len(b.Ops)*32)}
	h := b.Header
	e.u64(h.SessionID)
	e.u64(uint64(h.WorldLine))
	e.u64(uint64(h.Vs))
	e.u64(h.SeqStart)
	e.u32(h.NumOps)
	e.u32(uint32(h.Dep.Worker))
	e.u64(uint64(h.Dep.Version))
	e.u32(uint32(len(b.Ops)))
	for _, op := range b.Ops {
		e.u8(op.Kind)
		e.bytes(op.Key)
		e.bytes(op.Value)
	}
	return e.buf
}

// DecodeBatchRequest parses a batch request payload.
func DecodeBatchRequest(p []byte) (*BatchRequest, error) {
	d := &decoder{buf: p}
	var b BatchRequest
	b.Header.SessionID = d.u64()
	b.Header.WorldLine = core.WorldLine(d.u64())
	b.Header.Vs = core.Version(d.u64())
	b.Header.SeqStart = d.u64()
	b.Header.NumOps = d.u32()
	b.Header.Dep.Worker = core.WorkerID(d.u32())
	b.Header.Dep.Version = core.Version(d.u64())
	n := int(d.u32())
	if d.err == nil && n > 0 {
		if n > len(p) { // cheap sanity bound
			return nil, errors.New("wire: op count exceeds frame")
		}
		b.Ops = make([]Op, n)
		for i := 0; i < n; i++ {
			b.Ops[i].Kind = d.u8()
			b.Ops[i].Key = append([]byte(nil), d.bytes()...)
			b.Ops[i].Value = append([]byte(nil), d.bytes()...)
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	return &b, nil
}

// ---- batch reply ----

// EncodeBatchReply serializes a reply payload.
func EncodeBatchReply(r *BatchReply) []byte {
	e := &encoder{buf: make([]byte, 0, 32+len(r.Results)*24)}
	e.u64(uint64(r.WorldLine))
	e.u32(uint32(len(r.Results)))
	for _, res := range r.Results {
		e.u8(res.Status)
		e.u64(uint64(res.Version))
		e.bytes(res.Value)
	}
	e.u32(uint32(len(r.Cut)))
	for w, v := range r.Cut {
		e.u32(uint32(w))
		e.u64(uint64(v))
	}
	return e.buf
}

// DecodeBatchReply parses a reply payload.
func DecodeBatchReply(p []byte) (*BatchReply, error) {
	d := &decoder{buf: p}
	var r BatchReply
	r.WorldLine = core.WorldLine(d.u64())
	n := int(d.u32())
	if d.err == nil && n > 0 {
		if n > len(p) {
			return nil, errors.New("wire: result count exceeds frame")
		}
		r.Results = make([]OpResult, n)
		for i := 0; i < n; i++ {
			r.Results[i].Status = d.u8()
			r.Results[i].Version = core.Version(d.u64())
			if v := d.bytes(); len(v) > 0 {
				r.Results[i].Value = append([]byte(nil), v...)
			}
		}
	}
	cn := int(d.u32())
	if d.err == nil && cn > 0 {
		r.Cut = make(core.Cut, cn)
		for i := 0; i < cn; i++ {
			w := core.WorkerID(d.u32())
			r.Cut[w] = core.Version(d.u64())
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	return &r, nil
}

// ---- error reply ----

// EncodeError serializes an error payload.
func EncodeError(e *ErrorReply) []byte {
	enc := &encoder{}
	enc.u8(e.Code)
	enc.u64(uint64(e.WorldLine))
	enc.bytes([]byte(e.Message))
	return enc.buf
}

// DecodeError parses an error payload.
func DecodeError(p []byte) (*ErrorReply, error) {
	d := &decoder{buf: p}
	var e ErrorReply
	e.Code = d.u8()
	e.WorldLine = core.WorldLine(d.u64())
	e.Message = string(d.bytes())
	if d.err != nil {
		return nil, d.err
	}
	return &e, nil
}
