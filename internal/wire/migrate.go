// Migration frames: the donor→target stream that moves a set of virtual
// partitions between workers (internal/migration). A migration stream is
//
//	MigrateBegin (id, world-line, donor, target, boundary, partitions)
//	MigrateRecords*  (kv records at versions ≤ boundary, newest per key)
//	MigrateCommit (id, total record count)
//	← MigrateAck (status, target world-line, target import version)
//
// The stream follows the same discipline as the batch path: Append* into a
// caller-owned scratch buffer, Decode*Into aliasing the frame payload, and
// package-level sentinel errors on the reject paths. Migration frames are
// off the steady-state serve path (they only flow while a handover is in
// progress), so they are not //dpr:noalloc — but record decode still reuses
// the caller's slice so a multi-megabyte stream does not churn the heap.
package wire

import "dpr/internal/core"

// Migration frame tags (continuing the Frame* space).
const (
	FrameMigrateBegin   byte = 4
	FrameMigrateRecords byte = 5
	FrameMigrateCommit  byte = 6
	FrameMigrateAck     byte = 7
)

// Migration ack statuses.
const (
	MigrateAckOK       byte = 0
	MigrateAckRejected byte = 1
)

// MigrateBegin opens a migration stream on a worker connection. Boundary is
// the donor's migration-cut position: every streamed record has version ≤
// Boundary, and the donor guarantees Boundary is persisted (and hence
// eligible for the DPR cut) before streaming. WorldLine pins the stream to
// the world-line the boundary was taken on; the target rejects the stream if
// its own world-line differs, because a rollback in between may have erased
// part of the stream's state.
type MigrateBegin struct {
	ID         uint64
	WorldLine  core.WorldLine
	From       core.WorkerID
	To         core.WorkerID
	Boundary   core.Version
	Partitions []uint64
}

// MigRecord is one key/value pair in a migration stream. Key and Val alias
// the frame payload on decode.
type MigRecord struct {
	Key     []byte
	Val     []byte
	Version core.Version // donor-side version (≤ boundary); informational at the target
}

// MigrateAck closes a migration stream. Version is the target-side version
// the imported records were written at: the donor must not complete the
// migration until the target's DPR cut covers it.
type MigrateAck struct {
	Status    byte
	WorldLine core.WorldLine
	Version   core.Version
	Message   string
}

// AppendMigrateBegin appends the begin-frame encoding to dst.
func AppendMigrateBegin(dst []byte, m *MigrateBegin) []byte {
	dst = appendU64(dst, m.ID)
	dst = appendU64(dst, uint64(m.WorldLine))
	dst = appendU32(dst, uint32(m.From))
	dst = appendU32(dst, uint32(m.To))
	dst = appendU64(dst, uint64(m.Boundary))
	dst = appendU32(dst, uint32(len(m.Partitions)))
	for _, p := range m.Partitions {
		dst = appendU64(dst, p)
	}
	return dst
}

// DecodeMigrateBegin parses a begin-frame payload.
func DecodeMigrateBegin(p []byte) (*MigrateBegin, error) {
	d := &decoder{buf: p}
	var m MigrateBegin
	m.ID = d.u64()
	m.WorldLine = core.WorldLine(d.u64())
	m.From = core.WorkerID(d.u32())
	m.To = core.WorkerID(d.u32())
	m.Boundary = core.Version(d.u64())
	n := int(d.u32())
	if d.err == nil && n > len(p) { // each partition entry needs 8 bytes
		return nil, errPartCount
	}
	if d.err == nil && n > 0 {
		m.Partitions = make([]uint64, n)
		for i := 0; i < n; i++ {
			m.Partitions[i] = d.u64()
		}
	}
	if err := d.finish(); err != nil {
		return nil, err
	}
	return &m, nil
}

// AppendMigrateRecords appends a records-frame encoding to dst.
func AppendMigrateRecords(dst []byte, recs []MigRecord) []byte {
	dst = appendU32(dst, uint32(len(recs)))
	for i := range recs {
		r := &recs[i]
		dst = appendU64(dst, uint64(r.Version))
		dst = appendBytes(dst, r.Key)
		dst = appendBytes(dst, r.Val)
	}
	return dst
}

// DecodeMigrateRecordsInto parses a records-frame payload, reusing recs.
// Keys and values alias p (zero copy): the caller must consume (copy into
// the store) every record before the frame buffer is reused.
func DecodeMigrateRecordsInto(recs []MigRecord, p []byte) ([]MigRecord, error) {
	d := &decoder{buf: p}
	n := int(d.u32())
	recs = recs[:0]
	if d.err == nil && n > len(p) { // each record needs ≥16 bytes
		return recs, errRecordCount
	}
	if d.err == nil && n > 0 {
		if cap(recs) < n {
			recs = make([]MigRecord, n)
		}
		recs = recs[:n]
		for i := 0; i < n; i++ {
			recs[i].Version = core.Version(d.u64())
			recs[i].Key = d.bytes()
			recs[i].Val = d.bytes()
		}
	}
	if err := d.finish(); err != nil {
		return recs[:0], err
	}
	return recs, nil
}

// AppendMigrateCommit appends the commit-frame encoding to dst. Total is the
// number of records streamed, so the target can detect a truncated stream.
func AppendMigrateCommit(dst []byte, id, total uint64) []byte {
	dst = appendU64(dst, id)
	return appendU64(dst, total)
}

// DecodeMigrateCommit parses a commit-frame payload.
func DecodeMigrateCommit(p []byte) (id, total uint64, err error) {
	d := &decoder{buf: p}
	id = d.u64()
	total = d.u64()
	if err := d.finish(); err != nil {
		return 0, 0, err
	}
	return id, total, nil
}

// AppendMigrateAck appends the ack-frame encoding to dst.
func AppendMigrateAck(dst []byte, a *MigrateAck) []byte {
	dst = append(dst, a.Status)
	dst = appendU64(dst, uint64(a.WorldLine))
	dst = appendU64(dst, uint64(a.Version))
	dst = appendU32(dst, uint32(len(a.Message)))
	return append(dst, a.Message...)
}

// DecodeMigrateAck parses an ack-frame payload.
func DecodeMigrateAck(p []byte) (*MigrateAck, error) {
	d := &decoder{buf: p}
	var a MigrateAck
	a.Status = d.u8()
	a.WorldLine = core.WorldLine(d.u64())
	a.Version = core.Version(d.u64())
	a.Message = string(d.bytes())
	if err := d.finish(); err != nil {
		return nil, err
	}
	return &a, nil
}
