package wire

import (
	"io"
	"net"
	"testing"
	"time"
)

// startEcho runs a TCP echo server and returns its address.
func startEcho(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() { io.Copy(c, c); c.Close() }()
		}
	}()
	return ln.Addr().String()
}

func roundTrip(t *testing.T, conn net.Conn, msg string) (string, error) {
	t.Helper()
	if _, err := conn.Write([]byte(msg)); err != nil {
		return "", err
	}
	buf := make([]byte, len(msg))
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(conn, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func TestFaultProxyForwards(t *testing.T) {
	p, err := NewFaultProxy(startEcho(t))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	got, err := roundTrip(t, conn, "hello")
	if err != nil || got != "hello" {
		t.Fatalf("round trip: %q, %v", got, err)
	}
}

func TestFaultProxyDelay(t *testing.T) {
	p, err := NewFaultProxy(startEcho(t))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := roundTrip(t, conn, "warm"); err != nil {
		t.Fatal(err)
	}
	p.SetDelay(30 * time.Millisecond)
	start := time.Now()
	if _, err := roundTrip(t, conn, "slow"); err != nil {
		t.Fatal(err)
	}
	// Two taps (request + reply) at 30ms each.
	if el := time.Since(start); el < 50*time.Millisecond {
		t.Fatalf("delay not applied: round trip took %v", el)
	}
	p.SetDelay(0)
	start = time.Now()
	if _, err := roundTrip(t, conn, "fast"); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el > 40*time.Millisecond {
		t.Fatalf("delay not cleared: round trip took %v", el)
	}
}

func TestFaultProxySeverAll(t *testing.T) {
	p, err := NewFaultProxy(startEcho(t))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := roundTrip(t, conn, "pre"); err != nil {
		t.Fatal(err)
	}
	if n := p.SeverAll(); n == 0 {
		t.Fatal("no connections severed")
	}
	buf := make([]byte, 1)
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("severed connection still delivers data")
	}
	// New dials must still work.
	conn2, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	if got, err := roundTrip(t, conn2, "post"); err != nil || got != "post" {
		t.Fatalf("post-sever round trip: %q, %v", got, err)
	}
}

func TestFaultProxyBlackhole(t *testing.T) {
	p, err := NewFaultProxy(startEcho(t))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := roundTrip(t, conn, "pre"); err != nil {
		t.Fatal(err)
	}
	p.SetBlackhole(true)
	if _, err := conn.Write([]byte("lost")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	conn.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	if n, _ := conn.Read(buf); n != 0 {
		t.Fatalf("blackholed traffic delivered %d bytes", n)
	}
	// A blackhole window ends with a sever; afterwards fresh connections
	// flow again.
	p.SetBlackhole(false)
	p.SeverAll()
	conn2, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	if got, err := roundTrip(t, conn2, "post"); err != nil || got != "post" {
		t.Fatalf("post-blackhole round trip: %q, %v", got, err)
	}
}

func TestFaultProxySetBackend(t *testing.T) {
	a := startEcho(t)
	p, err := NewFaultProxy("127.0.0.1:1") // dead backend
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	// Dials against a dead backend are severed immediately.
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("dead-backend connection delivered data")
	}
	conn.Close()
	// Repoint at a live backend (worker restarted on a new port).
	p.SetBackend(a)
	conn2, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	if got, err := roundTrip(t, conn2, "alive"); err != nil || got != "alive" {
		t.Fatalf("post-SetBackend round trip: %q, %v", got, err)
	}
}
