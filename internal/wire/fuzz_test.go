package wire

import (
	"bytes"
	"testing"

	"dpr/internal/core"
	"dpr/internal/libdpr"
)

// The fuzz targets below feed arbitrary payloads into the three frame
// decoders. Decoders must either reject a payload or produce a value that
// re-encodes and re-decodes to the same thing; they must never panic,
// over-allocate from attacker-controlled counts, or silently accept frames
// with trailing garbage. Seed corpora live in testdata/fuzz/ so every CI run
// exercises the interesting shapes without a fuzzing engine; `go test
// -fuzz=FuzzDecodeBatchRequest ./internal/wire` explores from there.

func FuzzDecodeBatchRequest(f *testing.F) {
	f.Add(EncodeBatchRequest(&BatchRequest{
		Header: libdpr.BatchHeader{
			SessionID: 7, WorldLine: 1, Vs: 3, SeqStart: 9, NumOps: 2,
			Dep: core.Token{Worker: 2, Version: 5},
		},
		Ops: []Op{
			{Kind: OpUpsert, Key: []byte("key"), Value: []byte("value")},
			{Kind: OpRead, Key: []byte("k2")},
		},
	}))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 48))
	f.Fuzz(func(t *testing.T, payload []byte) {
		b, err := DecodeBatchRequest(payload)
		if err != nil {
			return
		}
		// Accepted frames must round-trip: encode and decode again.
		re := EncodeBatchRequest(b)
		b2, err := DecodeBatchRequest(re)
		if err != nil {
			t.Fatalf("re-decode of accepted frame failed: %v", err)
		}
		if b2.Header != b.Header || len(b2.Ops) != len(b.Ops) {
			t.Fatalf("round-trip mismatch: %+v vs %+v", b.Header, b2.Header)
		}
		for i := range b.Ops {
			if b2.Ops[i].Kind != b.Ops[i].Kind ||
				!bytes.Equal(b2.Ops[i].Key, b.Ops[i].Key) ||
				!bytes.Equal(b2.Ops[i].Value, b.Ops[i].Value) {
				t.Fatalf("op %d round-trip mismatch", i)
			}
		}
	})
}

func FuzzDecodeBatchReply(f *testing.F) {
	f.Add(EncodeBatchReply(&BatchReply{
		WorldLine: 2,
		Results: []OpResult{
			{Status: StatusOK, Version: 4, Value: []byte("v")},
			{Status: StatusNotFound, Version: 4},
			{Status: StatusOK, Version: 5, Value: []byte{}},
		},
		Cut: core.Cut{1: 3, 2: 4},
	}))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 48))
	f.Fuzz(func(t *testing.T, payload []byte) {
		r, err := DecodeBatchReply(payload)
		if err != nil {
			return
		}
		re := EncodeBatchReply(r)
		r2, err := DecodeBatchReply(re)
		if err != nil {
			t.Fatalf("re-decode of accepted frame failed: %v", err)
		}
		if r2.WorldLine != r.WorldLine || len(r2.Results) != len(r.Results) || !r2.Cut.Equal(r.Cut) {
			t.Fatal("round-trip mismatch")
		}
		for i := range r.Results {
			a, b := r.Results[i], r2.Results[i]
			if a.Status != b.Status || a.Version != b.Version ||
				(a.Value == nil) != (b.Value == nil) || !bytes.Equal(a.Value, b.Value) {
				t.Fatalf("result %d round-trip mismatch: %+v vs %+v", i, a, b)
			}
		}
	})
}

func FuzzDecodeCutAdvance(f *testing.F) {
	f.Add(AppendCutAdvance(nil, 3, core.Cut{1: 5, 2: 9}))
	f.Add(AppendCutAdvance(nil, 0, core.Cut{}))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 24))
	f.Fuzz(func(t *testing.T, payload []byte) {
		a, err := DecodeCutAdvance(payload)
		if err != nil {
			return
		}
		re := AppendCutAdvance(nil, a.WorldLine, a.Cut)
		a2, err := DecodeCutAdvance(re)
		if err != nil {
			t.Fatalf("re-decode of accepted frame failed: %v", err)
		}
		if a2.WorldLine != a.WorldLine || !a2.Cut.Equal(a.Cut) {
			t.Fatalf("round-trip mismatch: %+v vs %+v", a, a2)
		}
		// The pre-encoded splice path must produce the same bytes as the
		// map-serializing path for a single-entry cut (multi-entry cuts
		// iterate the map in arbitrary order, so compare decoded forms).
		enc := AppendCut(nil, a.Cut)
		spliced := AppendCutAdvanceEncoded(nil, a.WorldLine, enc)
		a3, err := DecodeCutAdvance(spliced)
		if err != nil {
			t.Fatalf("spliced encoding rejected: %v", err)
		}
		if a3.WorldLine != a.WorldLine || !a3.Cut.Equal(a.Cut) {
			t.Fatal("spliced encoding decodes differently")
		}
	})
}

func FuzzDecodeError(f *testing.F) {
	f.Add(EncodeError(&ErrorReply{Code: ErrCodeRejected, WorldLine: 3, Message: "recover"}))
	f.Add(EncodeError(&ErrorReply{Code: ErrCodeMoved, WorldLine: 2, NewOwner: 4, Message: "partition moved"}))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 16))
	f.Fuzz(func(t *testing.T, payload []byte) {
		e, err := DecodeError(payload)
		if err != nil {
			return
		}
		e2, err := DecodeError(EncodeError(e))
		if err != nil {
			t.Fatalf("re-decode of accepted frame failed: %v", err)
		}
		if *e2 != *e {
			t.Fatalf("round-trip mismatch: %+v vs %+v", e, e2)
		}
	})
}
