package wire

import (
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// FaultProxy is a fault-injecting TCP forwarder interposed between clients
// and a worker: clients dial the proxy, the proxy dials the backend, and
// every byte flows through controllable fault taps. It is the network-fault
// substrate of the chaos harness (internal/chaos): connection severs,
// added latency, and traffic drops are injected here without touching the
// endpoints, the same way the paper's evaluation injects failures from
// outside the serving processes (§7.4).
//
// Controls:
//
//   - SetDelay(d): every forwarded chunk waits d before delivery, in each
//     direction (so one-way latency is d, round-trip 2d).
//   - SetBlackhole(on): forwarded bytes are read and discarded. Because
//     dropping part of a length-prefixed stream would desynchronize framing
//     if forwarding resumed, a blackhole window must end with SeverAll —
//     the endpoints then observe a dead connection that swallowed traffic,
//     the classic lost-request/lost-reply fault.
//   - SeverAll(): closes every live proxied connection pair. New dials
//     continue to be accepted and forwarded.
//
// All controls are safe for concurrent use and apply to existing as well as
// future connections.
type FaultProxy struct {
	ln net.Listener

	// backend is the current forwarding target; settable so a restarted
	// worker (new port) keeps its proxy — clients cache the proxy address
	// across worker restarts, as they would a stable service address.
	backend atomic.Pointer[string]

	delayNs   atomic.Int64
	blackhole atomic.Bool

	mu    sync.Mutex
	conns map[net.Conn]struct{}

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewFaultProxy starts a proxy on 127.0.0.1:0 forwarding to backend.
func NewFaultProxy(backend string) (*FaultProxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &FaultProxy{
		ln:    ln,
		conns: make(map[net.Conn]struct{}),
		stop:  make(chan struct{}),
	}
	p.backend.Store(&backend)
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address — the address clients should dial.
func (p *FaultProxy) Addr() string { return p.ln.Addr().String() }

// SetBackend changes the forwarding target for future connections (a worker
// restarted on a new port). Existing connections keep their old backend;
// sever them if they must not outlive the old target.
func (p *FaultProxy) SetBackend(addr string) { p.backend.Store(&addr) }

// SetDelay sets the per-direction forwarding delay (0 disables).
func (p *FaultProxy) SetDelay(d time.Duration) { p.delayNs.Store(int64(d)) }

// Delay returns the current per-direction forwarding delay.
func (p *FaultProxy) Delay() time.Duration { return time.Duration(p.delayNs.Load()) }

// SetBlackhole toggles traffic discarding. End a blackhole window with
// SeverAll (see the type comment for why).
func (p *FaultProxy) SetBlackhole(on bool) { p.blackhole.Store(on) }

// SeverAll closes every live proxied connection and reports how many
// connections (both sides counted) were closed.
func (p *FaultProxy) SeverAll() int {
	p.mu.Lock()
	n := len(p.conns)
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	return n
}

// Close stops the proxy and severs everything.
func (p *FaultProxy) Close() {
	p.stopOnce.Do(func() {
		close(p.stop)
		p.ln.Close()
	})
	p.SeverAll()
	p.wg.Wait()
}

// track registers a connection for SeverAll; refuses when closing.
func (p *FaultProxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	select {
	case <-p.stop:
		return false
	default:
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *FaultProxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

func (p *FaultProxy) acceptLoop() {
	defer p.wg.Done()
	for {
		client, err := p.ln.Accept()
		if err != nil {
			select {
			case <-p.stop:
				return
			default:
				continue
			}
		}
		backend, err := net.Dial("tcp", *p.backend.Load())
		if err != nil {
			// Backend down (e.g. killed worker): the client sees an
			// immediate sever, exactly what dialing a dead worker yields.
			client.Close()
			continue
		}
		if !p.track(client) || !p.track(backend) {
			client.Close()
			backend.Close()
			return
		}
		p.wg.Add(2)
		go p.pipe(backend, client)
		go p.pipe(client, backend)
	}
}

// pipe forwards src→dst through the fault taps, closing both ends when
// either side fails (a half-dead proxied connection is indistinguishable
// from a network partition and would hang the endpoints' framed readers).
func (p *FaultProxy) pipe(dst, src net.Conn) {
	defer p.wg.Done()
	defer p.untrack(src)
	defer src.Close()
	defer dst.Close()
	buf := make([]byte, 32<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if d := time.Duration(p.delayNs.Load()); d > 0 {
				select {
				case <-time.After(d):
				case <-p.stop:
					return
				}
			}
			if !p.blackhole.Load() {
				if _, werr := dst.Write(buf[:n]); werr != nil {
					return
				}
			}
		}
		if err != nil {
			if err != io.EOF {
				return
			}
			return
		}
	}
}
