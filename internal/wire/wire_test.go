package wire

import (
	"bufio"
	"bytes"
	"math/rand"
	"net"
	"reflect"
	"testing"
	"testing/quick"

	"dpr/internal/core"
	"dpr/internal/libdpr"
)

func TestBatchRequestRoundTrip(t *testing.T) {
	req := &BatchRequest{
		Header: libdpr.BatchHeader{
			SessionID: 42, WorldLine: 3, Vs: 17, SeqStart: 1001, NumOps: 2,
			Dep: core.Token{Worker: 5, Version: 16},
		},
		Ops: []Op{
			{Kind: OpUpsert, Key: []byte("key1"), Value: []byte("value1")},
			{Kind: OpRead, Key: []byte("key2")},
		},
	}
	got, err := DecodeBatchRequest(EncodeBatchRequest(req))
	if err != nil {
		t.Fatal(err)
	}
	if got.Header != req.Header {
		t.Fatalf("header mismatch: %+v vs %+v", got.Header, req.Header)
	}
	if len(got.Ops) != 2 || !bytes.Equal(got.Ops[0].Value, []byte("value1")) ||
		got.Ops[1].Kind != OpRead || !bytes.Equal(got.Ops[1].Key, []byte("key2")) {
		t.Fatalf("ops mismatch: %+v", got.Ops)
	}
}

func TestBatchReplyRoundTrip(t *testing.T) {
	rep := &BatchReply{
		WorldLine: 2,
		Results: []OpResult{
			{Status: StatusOK, Version: 7, Value: []byte("v")},
			{Status: StatusNotFound, Version: 7},
		},
		Cut: core.Cut{1: 5, 2: 3},
	}
	got, err := DecodeBatchReply(EncodeBatchReply(rep))
	if err != nil {
		t.Fatal(err)
	}
	if got.WorldLine != 2 || len(got.Results) != 2 || !got.Cut.Equal(rep.Cut) {
		t.Fatalf("reply mismatch: %+v", got)
	}
	if got.Results[0].Status != StatusOK || string(got.Results[0].Value) != "v" ||
		got.Results[1].Status != StatusNotFound {
		t.Fatalf("results mismatch: %+v", got.Results)
	}
}

func TestErrorRoundTrip(t *testing.T) {
	e := &ErrorReply{Code: ErrCodeRejected, WorldLine: 9, NewOwner: 7, Message: "client must recover"}
	got, err := DecodeError(EncodeError(e))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, e) {
		t.Fatalf("%+v != %+v", got, e)
	}
	if got.Error() == "" {
		t.Fatal("error string must be non-empty")
	}
}

func TestTruncatedFramesRejected(t *testing.T) {
	req := &BatchRequest{Header: libdpr.BatchHeader{SessionID: 1, NumOps: 1},
		Ops: []Op{{Kind: OpUpsert, Key: []byte("k"), Value: []byte("v")}}}
	full := EncodeBatchRequest(req)
	for cut := 1; cut < len(full); cut += 7 {
		if _, err := DecodeBatchRequest(full[:cut]); err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
	rep := &BatchReply{Results: []OpResult{{Status: StatusOK}}, Cut: core.Cut{1: 1}}
	fullRep := EncodeBatchReply(rep)
	for cut := 1; cut < len(fullRep); cut += 5 {
		if _, err := DecodeBatchReply(fullRep[:cut]); err == nil {
			t.Fatalf("reply truncation at %d not detected", cut)
		}
	}
}

func TestFrameIO(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	go func() {
		w := bufio.NewWriter(client)
		WriteFrame(w, FrameBatchRequest, []byte("hello"))
		WriteFrame(w, FrameError, []byte("world!"))
		w.Flush()
	}()
	r := bufio.NewReader(server)
	tag, p, err := ReadFrame(r)
	if err != nil || tag != FrameBatchRequest || string(p) != "hello" {
		t.Fatalf("frame 1: %d %q %v", tag, p, err)
	}
	tag, p, err = ReadFrame(r)
	if err != nil || tag != FrameError || string(p) != "world!" {
		t.Fatalf("frame 2: %d %q %v", tag, p, err)
	}
}

func TestFrameSizeLimit(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF}) // 4 GiB frame
	if _, _, err := ReadFrame(bufio.NewReader(&buf)); err == nil {
		t.Fatal("oversized frame must be rejected")
	}
}

// Property: request encoding round-trips for arbitrary batches.
func TestBatchRequestRoundTripProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		req := &BatchRequest{
			Header: libdpr.BatchHeader{
				SessionID: rng.Uint64(),
				WorldLine: core.WorldLine(rng.Uint64() % 1000),
				Vs:        core.Version(rng.Uint64() % 1e6),
				SeqStart:  rng.Uint64(),
				Dep:       core.Token{Worker: core.WorkerID(rng.Uint32()), Version: core.Version(rng.Uint64() % 1e6)},
			},
		}
		n := rng.Intn(20)
		req.Header.NumOps = uint32(n)
		for i := 0; i < n; i++ {
			op := Op{Kind: byte(rng.Intn(4) + 1), Key: make([]byte, rng.Intn(64)+1)}
			rng.Read(op.Key)
			if op.Kind != OpRead && op.Kind != OpDelete {
				op.Value = make([]byte, rng.Intn(256))
				rng.Read(op.Value)
			}
			req.Ops = append(req.Ops, op)
		}
		got, err := DecodeBatchRequest(EncodeBatchRequest(req))
		if err != nil || got.Header != req.Header || len(got.Ops) != len(req.Ops) {
			return false
		}
		for i := range req.Ops {
			if got.Ops[i].Kind != req.Ops[i].Kind ||
				!bytes.Equal(got.Ops[i].Key, req.Ops[i].Key) ||
				!bytes.Equal(got.Ops[i].Value, req.Ops[i].Value) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
