package wire

import (
	"reflect"
	"testing"
)

func TestMigrateBeginRoundTrip(t *testing.T) {
	m := &MigrateBegin{ID: 7, WorldLine: 2, From: 1, To: 4, Boundary: 99,
		Partitions: []uint64{3, 11, 27}}
	got, err := DecodeMigrateBegin(AppendMigrateBegin(nil, m))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("%+v != %+v", got, m)
	}
}

func TestMigrateRecordsRoundTrip(t *testing.T) {
	recs := []MigRecord{
		{Key: []byte("a"), Val: []byte("v1"), Version: 3},
		{Key: []byte("bb"), Val: []byte{}, Version: 9},
	}
	var scratch []MigRecord
	got, err := DecodeMigrateRecordsInto(scratch, AppendMigrateRecords(nil, recs))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("got %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if string(got[i].Key) != string(recs[i].Key) ||
			string(got[i].Val) != string(recs[i].Val) ||
			got[i].Version != recs[i].Version {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, got[i], recs[i])
		}
	}
}

func TestMigrateCommitAckRoundTrip(t *testing.T) {
	id, total, err := DecodeMigrateCommit(AppendMigrateCommit(nil, 7, 1234))
	if err != nil || id != 7 || total != 1234 {
		t.Fatalf("commit round trip: id=%d total=%d err=%v", id, total, err)
	}
	a := &MigrateAck{Status: MigrateAckOK, WorldLine: 3, Version: 88, Message: "ok"}
	got, err := DecodeMigrateAck(AppendMigrateAck(nil, a))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, a) {
		t.Fatalf("%+v != %+v", got, a)
	}
}

func TestMigrateFramesRejectTruncation(t *testing.T) {
	full := AppendMigrateBegin(nil, &MigrateBegin{ID: 1, WorldLine: 1, From: 1, To: 2,
		Boundary: 5, Partitions: []uint64{0, 1}})
	for cut := 0; cut < len(full); cut++ {
		if _, err := DecodeMigrateBegin(full[:cut]); err == nil {
			t.Fatalf("begin truncation at %d not detected", cut)
		}
	}
	rfull := AppendMigrateRecords(nil, []MigRecord{{Key: []byte("k"), Val: []byte("v"), Version: 1}})
	for cut := 0; cut < len(rfull); cut++ {
		if _, err := DecodeMigrateRecordsInto(nil, rfull[:cut]); err == nil {
			t.Fatalf("records truncation at %d not detected", cut)
		}
	}
	if _, _, err := DecodeMigrateCommit([]byte{1, 2, 3}); err == nil {
		t.Fatal("short commit frame not detected")
	}
	if _, err := DecodeMigrateAck([]byte{0}); err == nil {
		t.Fatal("short ack frame not detected")
	}
}
